//! The forward dataflow pass: taint lattice + constant folding + the
//! Table III `(fva, sc)` mirror, joined over the CFG to a fixpoint.

use std::collections::{BTreeSet, VecDeque};

use prefender_core::{CalculationBuffer, StConfig};
use prefender_isa::{Instr, Operand, Program, Reg, NUM_REGS};

use crate::cfg::Cfg;
use crate::report::{Sink, SinkKind, TaintReport};
use crate::spec::TaintSpec;

/// Abstract-memory budget: beyond this many distinct tainted addresses the
/// analysis degrades to "tainted data escaped somewhere" (`heap_tainted`)
/// instead of growing without bound.
const MEM_CAP: usize = 64;

/// The per-block abstract state. Every component only moves up its
/// lattice under `join` (taint bits set, constants degrade to unknown,
/// tainted-address sets grow, `heap_tainted` latches, `(fva, sc)` degrade
/// to NA), so the worklist fixpoint terminates.
#[derive(Clone, PartialEq)]
struct AbsState {
    /// Bit `i` set = register `i` holds a secret-derived value.
    taint: u32,
    /// Machine-exact constant value per register, `None` = unknown.
    vals: [Option<u64>; NUM_REGS],
    /// The Scale Tracker mirror: Table III state along this path.
    calc: CalculationBuffer,
    /// Concrete addresses known to hold tainted values.
    mem: BTreeSet<u64>,
    /// A tainted value (or a store with a tainted address) escaped to
    /// statically unresolvable memory: every later load may be secret.
    heap_tainted: bool,
}

impl AbsState {
    fn entry(spec: &TaintSpec) -> AbsState {
        let mut taint = 0u32;
        let mut vals = [Some(0u64); NUM_REGS];
        for &r in &spec.regs {
            taint |= 1 << r.index();
            vals[r.index()] = None; // a secret has no known value
        }
        AbsState {
            taint,
            vals,
            calc: CalculationBuffer::new(),
            mem: BTreeSet::new(),
            heap_tainted: false,
        }
    }

    fn reg_taint(&self, r: Reg) -> bool {
        self.taint & (1 << r.index()) != 0
    }

    fn set_taint(&mut self, r: Reg, tainted: bool) {
        if tainted {
            self.taint |= 1 << r.index();
        } else {
            self.taint &= !(1 << r.index());
        }
    }

    fn operand_taint(&self, b: Operand) -> bool {
        match b {
            Operand::Reg(r) => self.reg_taint(r),
            Operand::Imm(_) => false,
        }
    }

    fn operand_val(&self, b: Operand) -> Option<u64> {
        match b {
            Operand::Reg(r) => self.vals[r.index()],
            Operand::Imm(imm) => Some(imm as u64),
        }
    }

    /// The statically resolved access address, mirroring the machine's
    /// `base.wrapping_add(offset as u64)`.
    fn addr_of(&self, base: Reg, offset: i64) -> Option<u64> {
        self.vals[base.index()].map(|v| v.wrapping_add(offset as u64))
    }

    /// Joins `other` into `self`; `true` when anything changed.
    fn join_from(&mut self, other: &AbsState) -> bool {
        let before = self.clone();
        self.taint |= other.taint;
        for i in 0..NUM_REGS {
            if self.vals[i] != other.vals[i] {
                self.vals[i] = None;
            }
        }
        for r in Reg::all() {
            let joined = self.calc.get(r).join(other.calc.get(r));
            self.calc.set(r, joined);
        }
        self.mem.extend(other.mem.iter().copied());
        if self.mem.len() > MEM_CAP {
            self.mem.clear();
            self.heap_tainted = true;
        }
        self.heap_tainted |= other.heap_tainted;
        *self != before
    }

    fn record_tainted_store(&mut self, addr: u64) {
        if self.mem.len() >= MEM_CAP && !self.mem.contains(&addr) {
            self.heap_tainted = true;
        } else {
            self.mem.insert(addr);
        }
    }
}

/// Machine-exact constant folding of the ALU ops (wrapping `u64`
/// arithmetic, shift amounts masked to 63 — see the interpreter's
/// dispatch in `prefender-cpu`).
fn fold(instr: &Instr, a: u64, b: u64) -> u64 {
    match instr {
        Instr::Add { .. } => a.wrapping_add(b),
        Instr::Sub { .. } => a.wrapping_sub(b),
        Instr::Mul { .. } => a.wrapping_mul(b),
        Instr::Shl { .. } => a.wrapping_shl((b & 63) as u32),
        Instr::Shr { .. } => a.wrapping_shr((b & 63) as u32),
        Instr::And { .. } => a & b,
        Instr::Or { .. } => a | b,
        Instr::Xor { .. } => a ^ b,
        _ => unreachable!("fold is only called for ALU instructions"),
    }
}

/// One instruction's transfer function. When `sinks` is provided (the
/// post-fixpoint reporting pass) flagged sinks are appended.
fn step(
    st: &mut AbsState,
    instr: &Instr,
    index: usize,
    spec: &TaintSpec,
    mut sinks: Option<&mut Vec<(usize, SinkKind, Option<i64>)>>,
) {
    let mut flag = |kind: SinkKind, scale: Option<i64>| {
        if let Some(v) = sinks.as_deref_mut() {
            v.push((index, kind, scale));
        }
    };
    match *instr {
        Instr::LoadImm { rd, imm } => {
            st.set_taint(rd, false);
            st.vals[rd.index()] = Some(imm as u64);
        }
        Instr::Mov { rd, rs } => {
            st.set_taint(rd, st.reg_taint(rs));
            st.vals[rd.index()] = st.vals[rs.index()];
        }
        Instr::Add { rd, a, b }
        | Instr::Sub { rd, a, b }
        | Instr::Mul { rd, a, b }
        | Instr::Shl { rd, a, b }
        | Instr::Shr { rd, a, b }
        | Instr::And { rd, a, b }
        | Instr::Or { rd, a, b }
        | Instr::Xor { rd, a, b } => {
            st.set_taint(rd, st.reg_taint(a) || st.operand_taint(b));
            st.vals[rd.index()] = match (st.vals[a.index()], st.operand_val(b)) {
                (Some(x), Some(y)) => Some(fold(instr, x, y)),
                _ => None,
            };
        }
        Instr::Load { rd, base, offset } => {
            if st.reg_taint(base) {
                flag(SinkKind::LoadAddr, st.calc.get(base).sc);
            }
            let addr = st.addr_of(base, offset);
            let tainted = st.reg_taint(base)
                || st.heap_tainted
                || addr.is_some_and(|a| spec.mem_source(a) || st.mem.contains(&a));
            st.set_taint(rd, tainted);
            st.vals[rd.index()] = None;
        }
        Instr::Store { src, base, offset } => {
            if st.reg_taint(base) {
                flag(SinkKind::StoreAddr, st.calc.get(base).sc);
                // Secret-chosen destination: memory contents now differ at
                // secret-chosen locations we cannot resolve.
                st.heap_tainted = true;
            }
            match st.addr_of(base, offset) {
                Some(a) => {
                    if st.reg_taint(src) {
                        st.record_tainted_store(a);
                    } else {
                        // Strong update: the exact cell now holds a
                        // secret-independent value. (A declared memory
                        // *source* stays a source — the spec describes
                        // program entry, and re-reading it through a
                        // tainted pointer is already flagged above.)
                        st.mem.remove(&a);
                    }
                }
                None => {
                    if st.reg_taint(src) {
                        st.heap_tainted = true;
                    }
                    // An unresolved untainted store may alias a tainted
                    // cell; keeping the cell tainted over-approximates.
                }
            }
        }
        Instr::Flush { base, .. } => {
            if st.reg_taint(base) {
                flag(SinkKind::FlushTarget, st.calc.get(base).sc);
            }
        }
        Instr::Bnz { cond, .. } => {
            if st.reg_taint(cond) {
                flag(SinkKind::Branch, None);
            }
        }
        Instr::Beq { a, b, .. } | Instr::Blt { a, b, .. } => {
            if st.reg_taint(a) || st.reg_taint(b) {
                flag(SinkKind::Branch, None);
            }
        }
        Instr::Rdtsc { rd } => {
            // Timing is the leakage lab's domain, not dataflow taint.
            st.set_taint(rd, false);
            st.vals[rd.index()] = None;
        }
        Instr::Nop | Instr::Jmp { .. } | Instr::Halt => {}
    }
    // The Scale Tracker mirror sees every retired instruction, exactly
    // like the runtime calculation buffer.
    st.calc.apply(instr);
}

/// Analyzes `program` against `spec` with the paper's Scale Tracker
/// configuration (64-byte lines, 4 KB pages).
pub fn analyze(program: &Program, spec: &TaintSpec) -> TaintReport {
    analyze_with(program, spec, &StConfig::paper())
}

/// Analyzes `program` against `spec`, predicting DataScale coverage under
/// an explicit Scale Tracker configuration.
pub fn analyze_with(program: &Program, spec: &TaintSpec, st_cfg: &StConfig) -> TaintReport {
    let cfg = Cfg::build(program);
    let blocks = cfg.blocks();
    let mut input: Vec<Option<AbsState>> = vec![None; blocks.len()];
    if blocks.is_empty() {
        return TaintReport { name: program.name().to_owned(), n_instrs: 0, sinks: Vec::new() };
    }
    input[0] = Some(AbsState::entry(spec));

    let mut worklist: VecDeque<usize> = VecDeque::from([0]);
    let mut queued = vec![false; blocks.len()];
    queued[0] = true;
    while let Some(b) = worklist.pop_front() {
        queued[b] = false;
        let mut st = input[b].clone().expect("queued blocks have input state");
        for i in blocks[b].start..blocks[b].end {
            step(&mut st, &program.instrs()[i], i, spec, None);
        }
        for &s in &blocks[b].succs {
            let changed = match &mut input[s] {
                Some(cur) => cur.join_from(&st),
                slot @ None => {
                    *slot = Some(st.clone());
                    true
                }
            };
            if changed && !queued[s] {
                queued[s] = true;
                worklist.push_back(s);
            }
        }
    }

    // Reporting pass: re-walk each reachable block from its fixed entry
    // state, collecting sinks. Unreachable blocks never execute and are
    // not flagged.
    let mut raw: Vec<(usize, SinkKind, Option<i64>)> = Vec::new();
    for (b, block) in blocks.iter().enumerate() {
        let Some(mut st) = input[b].clone() else { continue };
        for i in block.start..block.end {
            step(&mut st, &program.instrs()[i], i, spec, Some(&mut raw));
        }
    }
    raw.sort_by_key(|&(i, _, _)| i);

    let sinks = raw
        .into_iter()
        .map(|(index, kind, scale)| {
            let covered = matches!(kind, SinkKind::LoadAddr | SinkKind::StoreAddr)
                && scale.is_some_and(|sc| {
                    let sc = sc as u64;
                    sc > st_cfg.line_size && sc < st_cfg.page_size
                });
            Sink {
                index,
                pc: program.pc_of(index),
                kind,
                scale,
                covered,
                disasm: program.instrs()[index].to_string(),
            }
        })
        .collect();

    TaintReport { name: program.name().to_owned(), n_instrs: program.len(), sinks }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECRET: u64 = 0x2_0100;

    fn run(src: &str) -> TaintReport {
        let p = Program::parse(src).unwrap();
        analyze(&p, &TaintSpec::secret_cell(SECRET))
    }

    #[test]
    fn figure5_victim_flags_one_covered_load() {
        // The paper's `array[secret * 0x200]` gadget.
        let r = run("
            li  r0, 0x20100
            ld  r1, 0(r0)       ; secret
            li  r2, 0x100000
            li  r3, 0x200
            mul r4, r1, r3
            add r5, r2, r4
            ld  r6, 0(r5)       ; secret-dependent address
            halt
            ");
        assert_eq!(r.sinks.len(), 1);
        let s = &r.sinks[0];
        assert_eq!(s.kind, SinkKind::LoadAddr);
        assert_eq!(s.index, 6);
        assert_eq!(s.scale, Some(0x200));
        assert!(s.covered);
        assert_eq!(r.covered(), 1);
        assert_eq!(r.residual(), 0);
    }

    #[test]
    fn secret_free_program_is_clean() {
        let r = run("li r1, 0x1000\nld r2, 0(r1)\nadd r3, r2, 4\nld r4, 0(r3)\nhalt\n");
        // r3 derives from an unknown but untainted load — not a sink.
        assert_eq!(r.flagged(), 0);
    }

    #[test]
    fn branch_condition_sink() {
        let r = run("
            li  r0, 0x20100
            ld  r1, 0(r0)
            bnz r1, L0
            nop
            L0:
            halt
            ");
        assert_eq!(r.flagged(), 1);
        assert_eq!(r.sinks[0].kind, SinkKind::Branch);
        assert!(!r.sinks[0].covered, "no prefetch hides a branch");
    }

    #[test]
    fn flush_target_sink() {
        let r = run("
            li  r0, 0x20100
            ld  r1, 0(r0)
            li  r2, 0x40
            mul r3, r1, r2
            flush 0(r3)
            halt
            ");
        assert_eq!(r.flagged(), 1);
        assert_eq!(r.sinks[0].kind, SinkKind::FlushTarget);
        assert!(!r.sinks[0].covered);
    }

    #[test]
    fn sub_line_scale_is_residual() {
        // Scale 8 ≤ line size: flagged but DataScale cannot cover it.
        let r = run("
            li  r0, 0x20100
            ld  r1, 0(r0)
            li  r2, 8
            mul r3, r1, r2
            li  r4, 0x100000
            add r5, r4, r3
            ld  r6, 0(r5)
            halt
            ");
        assert_eq!(r.flagged(), 1);
        assert_eq!(r.sinks[0].scale, Some(8));
        assert!(!r.sinks[0].covered);
        assert_eq!(r.residual(), 1);
    }

    #[test]
    fn abstract_memory_round_trips_taint() {
        // Secret spilled to a constant address and reloaded stays tainted.
        let r = run("
            li  r0, 0x20100
            ld  r1, 0(r0)
            li  r2, 0x3000
            st  r1, 0(r2)
            ld  r3, 0(r2)
            li  r4, 0x200
            mul r5, r3, r4
            ld  r6, 0(r5)
            halt
            ");
        assert_eq!(r.flagged(), 1);
        assert_eq!(r.sinks[0].kind, SinkKind::LoadAddr);
        assert_eq!(r.sinks[0].index, 7);
    }

    #[test]
    fn strong_update_clears_spilled_taint() {
        // Overwriting the spill slot with a constant un-taints the reload.
        let r = run("
            li  r0, 0x20100
            ld  r1, 0(r0)
            li  r2, 0x3000
            st  r1, 0(r2)
            li  r5, 7
            st  r5, 0(r2)
            ld  r3, 0(r2)
            ld  r6, 0(r3)
            halt
            ");
        assert_eq!(r.flagged(), 0);
    }

    #[test]
    fn tainted_store_to_unknown_address_taints_later_loads() {
        // The secret escapes through a pointer we cannot resolve; any
        // later load may observe it.
        let r = run("
            li  r0, 0x20100
            ld  r1, 0(r0)       ; secret
            li  r2, 0x4000
            ld  r3, 0(r2)       ; unknown pointer
            st  r1, 0(r3)       ; secret escapes
            li  r4, 0x5000
            ld  r5, 0(r4)       ; may alias the escape
            ld  r6, 0(r5)
            halt
            ");
        // Sink: the final load's base r5 is (conservatively) tainted.
        assert_eq!(r.count(SinkKind::LoadAddr), 1);
        assert_eq!(r.sinks[0].index, 7);
    }

    #[test]
    fn taint_survives_loop_join_scale_degrades() {
        // The secret-scaled pointer is rebuilt each iteration with a
        // different stride on the two paths into the load: still flagged,
        // but no single scale survives the join, so not covered.
        let r = run("
            li  r0, 0x20100
            ld  r1, 0(r0)
            li  r2, 0x200
            mul r3, r1, r2
            bnz r1, L0
            li  r2, 0x80
            mul r3, r1, r2
            L0:
            li  r4, 0x100000
            add r5, r4, r3
            ld  r6, 0(r5)
            halt
            ");
        // The bnz on the secret is itself a sink, plus the load.
        assert_eq!(r.count(SinkKind::Branch), 1);
        assert_eq!(r.count(SinkKind::LoadAddr), 1);
        let load = r.sinks.iter().find(|s| s.kind == SinkKind::LoadAddr).unwrap();
        assert_eq!(load.scale, None, "0x200 vs 0x80 disagree at the join");
        assert!(!load.covered);
    }

    #[test]
    fn agreeing_paths_keep_scale_covered() {
        let r = run("
            li  r0, 0x20100
            ld  r1, 0(r0)
            li  r2, 0x200
            mul r3, r1, r2
            li  r9, 1
            bnz r9, L0
            nop
            L0:
            li  r4, 0x100000
            add r5, r4, r3
            ld  r6, 0(r5)
            halt
            ");
        let load = r.sinks.iter().find(|s| s.kind == SinkKind::LoadAddr).unwrap();
        assert_eq!(load.scale, Some(0x200));
        assert!(load.covered);
    }

    #[test]
    fn register_source_taints_from_entry() {
        let p = Program::parse("li r2, 0x200\nmul r3, r1, r2\nld r4, 0(r3)\nhalt\n").unwrap();
        let spec = TaintSpec::empty().with_reg(Reg::R1);
        let r = analyze(&p, &spec);
        assert_eq!(r.flagged(), 1);
        assert_eq!(r.sinks[0].kind, SinkKind::LoadAddr);
    }

    #[test]
    fn untaint_by_overwrite() {
        // Loading a constant over the secret clears the taint bit.
        let r = run("
            li  r0, 0x20100
            ld  r1, 0(r0)
            li  r1, 5
            ld  r2, 0(r1)
            halt
            ");
        assert_eq!(r.flagged(), 0);
    }

    #[test]
    fn empty_program_is_empty_report() {
        let p = Program::parse("").unwrap();
        let r = analyze(&p, &TaintSpec::secret_cell(SECRET));
        assert_eq!(r.n_instrs, 0);
        assert_eq!(r.flagged(), 0);
    }
}
