//! Taint source declarations.

use prefender_attacks::AttackSpec;
use prefender_isa::Reg;

/// A half-open byte range `[start, end)` of secret memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRange {
    /// First secret byte.
    pub start: u64,
    /// One past the last secret byte.
    pub end: u64,
}

impl MemRange {
    /// The 8-byte memory cell at `addr` — one machine word, the unit the
    /// ISA's `ld`/`st` move.
    pub fn cell(addr: u64) -> MemRange {
        MemRange { start: addr, end: addr.saturating_add(8) }
    }

    /// `true` when `addr` lies in the range.
    pub fn contains(&self, addr: u64) -> bool {
        (self.start..self.end).contains(&addr)
    }
}

/// Where secret data enters a program: registers tainted at entry and/or
/// memory ranges whose loads yield tainted values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintSpec {
    /// Registers holding secret values at program entry.
    pub regs: Vec<Reg>,
    /// Memory ranges holding secret values at program entry.
    pub ranges: Vec<MemRange>,
}

impl TaintSpec {
    /// No sources: every report over this spec is empty.
    pub fn empty() -> TaintSpec {
        TaintSpec::default()
    }

    /// One secret machine word at `addr` — the usual single-secret layout.
    pub fn secret_cell(addr: u64) -> TaintSpec {
        TaintSpec { regs: Vec::new(), ranges: vec![MemRange::cell(addr)] }
    }

    /// The spec an attack scenario implies: the secret cell the runner
    /// writes before execution ([`AttackLayout::secret_addr`]
    /// — the value [`AttackSpec::with_secret`] selects).
    ///
    /// [`AttackLayout::secret_addr`]: prefender_attacks::AttackLayout
    pub fn for_attack(spec: &AttackSpec) -> TaintSpec {
        TaintSpec::secret_cell(spec.layout.secret_addr)
    }

    /// Adds a register source.
    pub fn with_reg(mut self, r: Reg) -> TaintSpec {
        self.regs.push(r);
        self
    }

    /// Adds a memory-range source.
    pub fn with_range(mut self, start: u64, end: u64) -> TaintSpec {
        self.ranges.push(MemRange { start, end });
        self
    }

    /// `true` when a load at `addr` reads declared secret memory.
    pub(crate) fn mem_source(&self, addr: u64) -> bool {
        self.ranges.iter().any(|r| r.contains(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_attacks::{AttackKind, DefenseConfig};

    #[test]
    fn secret_cell_covers_one_word() {
        let s = TaintSpec::secret_cell(0x100);
        assert!(s.mem_source(0x100));
        assert!(s.mem_source(0x107));
        assert!(!s.mem_source(0x108));
        assert!(!s.mem_source(0xFF));
    }

    #[test]
    fn for_attack_uses_layout_secret() {
        let spec = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
        let t = TaintSpec::for_attack(&spec);
        assert!(t.mem_source(spec.layout.secret_addr));
        assert!(t.regs.is_empty());
    }
}
