//! Static secret-dependence analysis over guest programs.
//!
//! The leakage lab measures secret→observation channels *dynamically*
//! (mutual information against a permutation null); this crate answers the
//! complementary static question: **which instructions of a program are
//! secret-dependent at all?** — the property PREFENDER's Scale Tracker
//! approximates at runtime (Table III) and the property access-based
//! attacks exploit (load addresses correlated with secrets).
//!
//! # The analysis
//!
//! [`analyze`] runs a forward dataflow pass over a
//! [`Program`](prefender_isa::Program)'s control-flow graph ([`Cfg`]): a worklist fixpoint joining, per basic
//! block, an abstract state with four components:
//!
//! * a **taint bit** per register — does the value derive from a source
//!   declared in the [`TaintSpec`] (explicit dataflow through ALU ops,
//!   moves, loads and stores)?
//! * a **constant value** per register (machine-exact folding of the ISA's
//!   wrapping `u64` semantics) — needed to resolve load/store addresses
//!   against the spec's memory-range sources;
//! * a finite **abstract memory**: the set of concrete addresses known to
//!   hold tainted values (strong updates on exact addresses; a tainted
//!   value or address escaping to an unresolvable store latches a
//!   `heap_tainted` bit that conservatively taints every later load);
//! * a mirror of the Scale Tracker's **calculation buffer** — Table III's
//!   `(fva, sc)` rules run symbolically along the same CFG, with
//!   [`RegTrack::join`](prefender_core::RegTrack::join) at merges.
//!
//! Three sink classes are flagged wherever a tainted value reaches them:
//! secret-dependent load/store **addresses**, secret-dependent **branch
//! conditions**, and secret-dependent **flush targets** (together, the
//! constant-time policy). For each flagged load/store the mirrored scale
//! predicts whether PREFENDER's DataScale would *cover* the sink with
//! pretending prefetches (`line_size < sc < page_size` on every path);
//! sinks without a usable scale — and all branch/flush sinks, which no
//! prefetch hides — are *residual*.
//!
//! # Soundness scope
//!
//! The analysis tracks **explicit flows**. Secret data is assumed to live
//! only in the declared sources and whatever they flow into: a load from a
//! statically unresolvable address is treated as untainted unless its base
//! is tainted or a tainted store escaped first. Control dependence is
//! flagged at the branch sink itself rather than propagated into the
//! arms, and `rdtsc` results are untainted (timing channels are the
//! leakage lab's domain). Within that scope the analyzer is sound — the
//! crate's proptests check a differential oracle: on random straight-line
//! programs, every address the machine touches that *varies with the
//! secret* belongs to a statically flagged sink.
//!
//! ```
//! use prefender_attacks::{victim_program, AttackLayout};
//! use prefender_taint::{analyze, SinkKind, TaintSpec};
//!
//! let l = AttackLayout::paper();
//! let report = analyze(&victim_program(&l), &TaintSpec::secret_cell(l.secret_addr));
//! // Figure 5's `array[secret * 0x200]`: one secret-dependent load,
//! // covered by DataScale (64 < 0x200 < 4096).
//! assert_eq!(report.sinks.len(), 1);
//! assert_eq!(report.sinks[0].kind, SinkKind::LoadAddr);
//! assert_eq!(report.sinks[0].scale, Some(0x200));
//! assert!(report.sinks[0].covered);
//! ```

mod analysis;
mod cfg;
mod report;
mod spec;

pub use analysis::analyze;
pub use cfg::{BasicBlock, Cfg};
pub use report::{Sink, SinkKind, TaintReport};
pub use spec::{MemRange, TaintSpec};
