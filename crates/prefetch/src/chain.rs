//! Priority-ordered composition of prefetchers.

use prefender_sim::Addr;

use crate::event::{AccessEvent, PrefetchRequest, RetireEvent};
use crate::Prefetcher;

/// Runs several prefetchers in priority order on the same event streams.
///
/// Requests from earlier members come first in the returned vector — the
/// machine model issues them in order, which realizes the paper's rule
/// that "the priority of PREFENDER's prefetching is higher than basic
/// prefetchers" when a PREFENDER instance is chained before a baseline.
#[derive(Default)]
pub struct Chain {
    members: Vec<Box<dyn Prefetcher>>,
}

impl std::fmt::Debug for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.members.iter().map(|m| m.name()).collect();
        f.debug_struct("Chain").field("members", &names).finish()
    }
}

impl Chain {
    /// Creates an empty chain (equivalent to a null prefetcher).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a member at the lowest priority so far; returns `self` for
    /// chaining.
    #[must_use]
    pub fn then(mut self, p: Box<dyn Prefetcher>) -> Self {
        self.members.push(p);
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the chain has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Prefetcher for Chain {
    fn name(&self) -> &str {
        "chain"
    }

    fn on_retire(&mut self, ev: &RetireEvent<'_>) {
        for m in &mut self.members {
            m.on_retire(ev);
        }
    }

    fn on_access_into(
        &mut self,
        ev: &AccessEvent,
        resident: &dyn Fn(Addr) -> bool,
        out: &mut Vec<PrefetchRequest>,
    ) {
        for m in &mut self.members {
            m.on_access_into(ev, resident, out);
        }
    }

    fn retire_interest(&self) -> crate::RetireInterest {
        self.members
            .iter()
            .map(|m| m.retire_interest())
            .max()
            .unwrap_or(crate::RetireInterest::None)
    }

    fn issued(&self) -> u64 {
        self.members.iter().map(|m| m.issued()).sum()
    }

    fn reset(&mut self) {
        for m in &mut self.members {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::test_access;
    use crate::{NullPrefetcher, TaggedPrefetcher};

    #[test]
    fn empty_chain_is_null() {
        let mut c = Chain::new();
        assert!(c.is_empty());
        assert!(c.on_access(&test_access(0, 0x1000, false), &|_| false).is_empty());
    }

    #[test]
    fn members_run_in_order() {
        let mut c = Chain::new()
            .then(Box::new(NullPrefetcher::new()))
            .then(Box::new(TaggedPrefetcher::new(64, 1)));
        assert_eq!(c.len(), 2);
        let reqs = c.on_access(&test_access(0, 0x1000, false), &|_| false);
        assert_eq!(reqs.len(), 1);
        assert_eq!(c.issued(), 1);
    }

    #[test]
    fn reset_propagates() {
        let mut c = Chain::new().then(Box::new(TaggedPrefetcher::new(64, 1)));
        c.on_access(&test_access(0, 0x1000, false), &|_| false);
        c.reset();
        assert_eq!(c.issued(), 0);
    }
}
