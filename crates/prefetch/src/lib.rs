//! # prefender-prefetch — prefetcher interface and classic baselines
//!
//! Defines the [`Prefetcher`] trait through which the CPU model feeds two
//! event streams to any prefetcher sitting at a core's L1D:
//!
//! * **retire events** — every executed instruction (PREFENDER's Scale
//!   Tracker consumes these to track register dataflow);
//! * **access events** — every demand L1D access with its observed latency
//!   and hit level (all prefetchers consume these).
//!
//! Two classic baselines used by the paper's Tables IV–VI are provided:
//! the [`TaggedPrefetcher`] (Smith, 1978) and the Baer–Chen
//! [`StridePrefetcher`] (1991), plus a [`NullPrefetcher`] and a
//! priority-ordered [`Chain`].
//!
//! ```
//! use prefender_prefetch::{Prefetcher, TaggedPrefetcher, AccessEvent};
//! use prefender_sim::{Addr, AccessOutcome, AccessKind, Cycle, Level};
//!
//! let mut t = TaggedPrefetcher::new(64, 1);
//! let miss = AccessEvent {
//!     core: 0,
//!     pc: 0x8000,
//!     vaddr: Addr::new(0x1000),
//!     base: None,
//!     kind: AccessKind::Read,
//!     outcome: AccessOutcome {
//!         latency: 200,
//!         served_by: Level::Memory,
//!         first_prefetch_use: false,
//!         prefetch_source: None,
//!     },
//!     now: Cycle::ZERO,
//! };
//! let reqs = t.on_access(&miss, &|_| false);
//! assert_eq!(reqs[0].addr, Addr::new(0x1040)); // next-line prefetch
//! ```

mod chain;
mod event;
mod null;
mod stride;
mod tagged;

pub use chain::Chain;
pub use event::{AccessEvent, PrefetchRequest, RetireEvent};
pub use null::NullPrefetcher;
pub use stride::{StrideEntry, StridePrefetcher, StrideState};
pub use tagged::TaggedPrefetcher;

use prefender_sim::Addr;

/// Which retired instructions a prefetcher wants to observe through
/// [`Prefetcher::on_retire`].
///
/// The machine model asks once per attached prefetcher and skips the
/// retire notification (the `RetireEvent` construction and virtual call,
/// paid on **every** instruction) for instructions the prefetcher
/// declares it ignores. Declaring an interest is a contract: `on_retire`
/// must be a no-op for every instruction outside the declared class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum RetireInterest {
    /// `on_retire` is a no-op (the trait default): never notify.
    None,
    /// Only instructions that write an architectural register matter
    /// (`Instr::writes_reg`) — a register-dataflow tracker's class.
    RegWriters,
    /// Every retired instruction matters.
    #[default]
    All,
}

/// A hardware prefetcher attached to one core's L1D cache.
///
/// Implementations receive retire and access events and return
/// [`PrefetchRequest`]s; the machine model issues them into the hierarchy
/// (deduplicated against lines already present or in flight).
///
/// The trait is object-safe: the machine stores `Box<dyn Prefetcher>`.
pub trait Prefetcher {
    /// Short name for stats output (e.g. `"stride"`).
    fn name(&self) -> &str;

    /// Observes one retired instruction. Default: ignore.
    fn on_retire(&mut self, _ev: &RetireEvent<'_>) {}

    /// Which retired instructions [`Prefetcher::on_retire`] cares about.
    /// The conservative default is [`RetireInterest::All`]; prefetchers
    /// whose `on_retire` ignores some (or every) instruction class
    /// should narrow this so the machine can skip the call entirely.
    fn retire_interest(&self) -> RetireInterest {
        RetireInterest::All
    }

    /// Observes one demand L1D access and appends proposed prefetches to
    /// `out` — the allocation-free form the machine model drives with a
    /// reusable scratch buffer (one per machine, cleared between
    /// accesses, so the per-access hot path never allocates).
    ///
    /// `resident` reports whether the line holding an address is already in
    /// (or in flight to) this core's L1D — the "not currently in the L1D
    /// cache" test of the paper.
    ///
    /// Implementations must only *append* to `out`: composed prefetchers
    /// ([`Chain`], PREFENDER over a basic prefetcher) pass one shared
    /// buffer down their member stack to concatenate requests in
    /// priority order.
    fn on_access_into(
        &mut self,
        ev: &AccessEvent,
        resident: &dyn Fn(Addr) -> bool,
        out: &mut Vec<PrefetchRequest>,
    );

    /// Observes one demand L1D access and returns the proposed prefetches
    /// as an owned `Vec` — a convenience wrapper over
    /// [`Prefetcher::on_access_into`] for tests and one-shot callers.
    fn on_access(
        &mut self,
        ev: &AccessEvent,
        resident: &dyn Fn(Addr) -> bool,
    ) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        self.on_access_into(ev, resident, &mut out);
        out
    }

    /// Total prefetch requests this prefetcher has proposed.
    fn issued(&self) -> u64;

    /// Clears internal learning state (buffers, tables) and counters.
    fn reset(&mut self);

    /// Downcast hook: implementations with richer statistics (PREFENDER's
    /// per-unit counters) return `Some(self)` so harnesses can recover the
    /// concrete type from a `Box<dyn Prefetcher>`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        let b: Box<dyn Prefetcher> = Box::new(NullPrefetcher::new());
        assert_eq!(b.name(), "null");
    }
}
