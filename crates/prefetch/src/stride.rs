//! The Baer–Chen reference-prediction-table stride prefetcher —
//! paper references [16]/[40].

use prefender_sim::{Addr, PrefetchSource};

use crate::event::{AccessEvent, PrefetchRequest};
use crate::Prefetcher;

/// State of one reference-prediction-table entry (Baer–Chen, 1991).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrideState {
    /// Just allocated; stride unconfirmed.
    #[default]
    Initial,
    /// One misprediction from `Steady`.
    Transient,
    /// Stride confirmed; predictions issued in this state.
    Steady,
    /// Pattern looks irregular; no predictions.
    NoPrediction,
}

/// One entry of the reference prediction table.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrideEntry {
    /// PC tag of the owning load.
    pub pc: u64,
    /// Last address this load accessed.
    pub last_addr: u64,
    /// Current stride estimate (bytes, signed).
    pub stride: i64,
    /// Confidence state.
    pub state: StrideState,
    /// Entry holds data.
    pub valid: bool,
}

/// PC-indexed stride prefetcher.
///
/// A direct-mapped table of [`StrideEntry`]s keyed by load PC. The classic
/// state machine promotes an entry to `Steady` after the same stride is
/// observed twice, then prefetches `addr + stride`.
///
/// The attack relevance (paper challenge C2): an attacker probing its
/// eviction set *in random order* never trains a steady stride, so the
/// stride prefetcher is bypassed — which is why PREFENDER's Access Tracker
/// estimates `DiffMin` over a *set* of recorded block addresses instead.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    line_size: u64,
    degree: u32,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with `entries` table slots for caches
    /// with `line_size`-byte lines, prefetching `degree` strides ahead.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two, if `line_size`
    /// is not a power of two, or if `degree` is zero.
    pub fn new(entries: usize, line_size: u64, degree: u32) -> Self {
        assert!(entries > 0 && entries.is_power_of_two(), "entries must be a power of two");
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        assert!(degree > 0, "degree must be positive");
        StridePrefetcher {
            table: vec![StrideEntry::default(); entries],
            line_size,
            degree,
            issued: 0,
        }
    }

    /// Paper-typical default: 256 entries, 64-byte lines, degree 1.
    pub fn default_config() -> Self {
        Self::new(256, 64, 1)
    }

    fn slot(&self, pc: u64) -> usize {
        ((pc / 4) % self.table.len() as u64) as usize
    }

    /// The table entry a PC maps to (test/debug helper).
    pub fn entry(&self, pc: u64) -> &StrideEntry {
        &self.table[self.slot(pc)]
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &str {
        "stride"
    }

    fn on_access_into(
        &mut self,
        ev: &AccessEvent,
        resident: &dyn Fn(Addr) -> bool,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let slot = self.slot(ev.pc);
        let line_size = self.line_size;
        let degree = self.degree;
        let e = &mut self.table[slot];
        let addr = ev.vaddr.raw();

        if !e.valid || e.pc != ev.pc {
            *e = StrideEntry {
                pc: ev.pc,
                last_addr: addr,
                stride: 0,
                state: StrideState::Initial,
                valid: true,
            };
            return;
        }

        let observed = addr as i64 - e.last_addr as i64;
        let correct = observed == e.stride;
        e.state = match (e.state, correct) {
            (StrideState::Initial, true) => StrideState::Steady,
            (StrideState::Initial, false) => {
                e.stride = observed;
                StrideState::Transient
            }
            (StrideState::Transient, true) => StrideState::Steady,
            (StrideState::Transient, false) => {
                e.stride = observed;
                StrideState::NoPrediction
            }
            (StrideState::Steady, true) => StrideState::Steady,
            (StrideState::Steady, false) => StrideState::Initial,
            (StrideState::NoPrediction, true) => StrideState::Transient,
            (StrideState::NoPrediction, false) => {
                e.stride = observed;
                StrideState::NoPrediction
            }
        };
        e.last_addr = addr;

        let before = out.len();
        if e.state == StrideState::Steady && e.stride != 0 {
            let stride = e.stride;
            for k in 1..=degree as i64 {
                if let Some(target) = ev.vaddr.offset(k * stride) {
                    if !target.same_line(ev.vaddr, line_size) && !resident(target) {
                        out.push(PrefetchRequest::new(target, PrefetchSource::Basic));
                        prefender_obs::trace_event(|| prefender_obs::TraceEvent::PrefetchPropose {
                            at: u64::from(ev.now),
                            core: ev.core as u32,
                            pc: ev.pc,
                            line: target.line(line_size).raw(),
                        });
                    }
                }
            }
        }
        self.issued += (out.len() - before) as u64;
    }

    fn retire_interest(&self) -> crate::RetireInterest {
        crate::RetireInterest::None
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn reset(&mut self) {
        self.table.fill(StrideEntry::default());
        self.issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::test_access;

    fn drive(p: &mut StridePrefetcher, pc: u64, addrs: &[u64]) -> Vec<Vec<PrefetchRequest>> {
        addrs.iter().map(|&a| p.on_access(&test_access(pc, a, false), &|_| false)).collect()
    }

    #[test]
    fn steady_stride_trains_in_three_accesses() {
        let mut p = StridePrefetcher::new(64, 64, 1);
        let out = drive(&mut p, 0x8000, &[0x1000, 0x1200, 0x1400]);
        assert!(out[0].is_empty(), "allocation");
        assert!(out[1].is_empty(), "stride learned, still transient");
        assert_eq!(out[2], vec![PrefetchRequest::new(Addr::new(0x1600), PrefetchSource::Basic)]);
        assert_eq!(p.entry(0x8000).state, StrideState::Steady);
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = StridePrefetcher::new(64, 64, 1);
        let out = drive(&mut p, 0x8000, &[0x2000, 0x1E00, 0x1C00]);
        assert_eq!(out[2][0].addr, Addr::new(0x1A00));
    }

    #[test]
    fn random_order_never_trains() {
        // Challenge C2: random probe order bypasses the stride prefetcher.
        let mut p = StridePrefetcher::new(64, 64, 1);
        let out = drive(&mut p, 0x8000, &[0x1000, 0x5200, 0x2400, 0x9600, 0x3800, 0x1200]);
        assert!(out.iter().all(|r| r.is_empty()), "no steady state ever reached");
    }

    #[test]
    fn zero_stride_suppressed() {
        let mut p = StridePrefetcher::new(64, 64, 1);
        let out = drive(&mut p, 0x8000, &[0x1000, 0x1000, 0x1000, 0x1000]);
        assert!(out.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn sub_line_stride_suppressed() {
        // A stride of 8 bytes stays within the same line; prefetching it
        // would be a duplicate of the demand line.
        let mut p = StridePrefetcher::new(64, 64, 1);
        let out = drive(&mut p, 0x8000, &[0x1000, 0x1008, 0x1010, 0x1018]);
        assert!(out.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn conflicting_pc_reallocates() {
        let mut p = StridePrefetcher::new(64, 64, 1);
        drive(&mut p, 0x8000, &[0x1000, 0x1200, 0x1400]);
        // Same slot, different PC (slot = pc/4 % 64): pc + 64*4 collides.
        let other_pc = 0x8000 + 64 * 4;
        let out = drive(&mut p, other_pc, &[0x9000]);
        assert!(out[0].is_empty());
        assert_eq!(p.entry(other_pc).pc, other_pc);
        assert_eq!(p.entry(other_pc).state, StrideState::Initial);
    }

    #[test]
    fn steady_recovers_after_one_blip() {
        let mut p = StridePrefetcher::new(64, 64, 1);
        let out = drive(
            &mut p,
            0x8000,
            &[0x1000, 0x1200, 0x1400, 0x9999, 0x1800, 0x1A00, 0x1C00, 0x1E00],
        );
        // The blip at 0x9999 demotes the entry; the re-established 0x200
        // stride walks back up through Transient to Steady.
        assert!(out[4].is_empty() && out[5].is_empty() && out[6].is_empty());
        assert_eq!(out[7][0].addr, Addr::new(0x2000));
    }

    #[test]
    fn resident_suppresses() {
        let mut p = StridePrefetcher::new(64, 64, 1);
        drive(&mut p, 0x8000, &[0x1000, 0x1200]);
        let reqs = p.on_access(&test_access(0x8000, 0x1400, false), &|a| a.raw() == 0x1600);
        assert!(reqs.is_empty());
    }

    #[test]
    fn reset_clears_table() {
        let mut p = StridePrefetcher::new(64, 64, 1);
        drive(&mut p, 0x8000, &[0x1000, 0x1200, 0x1400]);
        p.reset();
        assert_eq!(p.issued(), 0);
        assert!(!p.entry(0x8000).valid);
    }
}
