//! The do-nothing prefetcher (the paper's no-prefetch baseline).

use prefender_sim::Addr;

use crate::event::{AccessEvent, PrefetchRequest};
use crate::Prefetcher;

/// A prefetcher that never prefetches.
///
/// Used as the baseline configuration in Tables IV–VI (speedups are
/// reported against a machine with no prefetchers at all).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPrefetcher;

impl NullPrefetcher {
    /// Creates the null prefetcher.
    pub fn new() -> Self {
        NullPrefetcher
    }
}

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &str {
        "null"
    }

    fn on_access_into(
        &mut self,
        _ev: &AccessEvent,
        _resident: &dyn Fn(Addr) -> bool,
        _out: &mut Vec<PrefetchRequest>,
    ) {
    }

    fn retire_interest(&self) -> crate::RetireInterest {
        crate::RetireInterest::None
    }

    fn issued(&self) -> u64 {
        0
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::test_access;

    #[test]
    fn never_prefetches() {
        let mut p = NullPrefetcher::new();
        let reqs = p.on_access(&test_access(0x8000, 0x1000, false), &|_| false);
        assert!(reqs.is_empty());
        assert_eq!(p.issued(), 0);
    }
}
