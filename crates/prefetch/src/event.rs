//! Events flowing from the CPU model to prefetchers.

use prefender_isa::{Instr, Reg};
use prefender_sim::{AccessKind, AccessOutcome, Addr, Cycle, PrefetchSource};

/// One retired instruction, observed at the execute stage.
///
/// PREFENDER's Scale Tracker updates its per-register `(fva, sc)`
/// calculation buffer from this stream (paper Figure 2: the ST sits at the
/// execute stage).
#[derive(Debug, Clone, Copy)]
pub struct RetireEvent<'a> {
    /// Core that retired the instruction.
    pub core: usize,
    /// The instruction's address.
    pub pc: u64,
    /// The instruction itself.
    pub instr: &'a Instr,
    /// Retirement time.
    pub now: Cycle,
}

/// One demand L1D access, observed at the memory stage.
#[derive(Debug, Clone, Copy)]
pub struct AccessEvent {
    /// Core that issued the access.
    pub core: usize,
    /// Address of the load/store instruction (the Access Tracker's key).
    pub pc: u64,
    /// The accessed data address.
    pub vaddr: Addr,
    /// The base register used in address generation, when there was one —
    /// the Scale Tracker looks up this register's scale.
    pub base: Option<Reg>,
    /// Load or store.
    pub kind: AccessKind,
    /// How the hierarchy served the access.
    pub outcome: AccessOutcome,
    /// Access time.
    pub now: Cycle,
}

impl AccessEvent {
    /// `true` when the access missed the private L1D.
    pub fn l1_miss(&self) -> bool {
        !self.outcome.l1_hit()
    }
}

/// A prefetch proposed by a prefetcher, to be issued into the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Target address (any byte within the desired line).
    pub addr: Addr,
    /// Attribution for statistics (paper Figures 9 and 11).
    pub source: PrefetchSource,
}

impl PrefetchRequest {
    /// Convenience constructor.
    pub fn new(addr: Addr, source: PrefetchSource) -> Self {
        PrefetchRequest { addr, source }
    }
}

#[cfg(test)]
pub(crate) use tests::access as test_access;

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_sim::Level;

    /// Builds a synthetic access event for prefetcher unit tests.
    pub(crate) fn access(pc: u64, addr: u64, l1_hit: bool) -> AccessEvent {
        AccessEvent {
            core: 0,
            pc,
            vaddr: Addr::new(addr),
            base: None,
            kind: AccessKind::Read,
            outcome: AccessOutcome {
                latency: if l1_hit { 4 } else { 200 },
                served_by: if l1_hit { Level::L1 } else { Level::Memory },
                first_prefetch_use: false,
                prefetch_source: None,
            },
            now: Cycle::ZERO,
        }
    }

    #[test]
    fn l1_miss_classification() {
        assert!(!access(0, 0, true).l1_miss());
        assert!(access(0, 0, false).l1_miss());
    }

    #[test]
    fn request_constructor() {
        let r = PrefetchRequest::new(Addr::new(0x40), PrefetchSource::Basic);
        assert_eq!(r.addr, Addr::new(0x40));
        assert_eq!(r.source, PrefetchSource::Basic);
    }
}
