//! The Tagged sequential prefetcher (Smith, 1978) — paper reference [15].

use prefender_sim::{Addr, PrefetchSource};

use crate::event::{AccessEvent, PrefetchRequest};
use crate::Prefetcher;

/// Tagged next-line prefetcher.
///
/// On a demand miss, or on the *first use* of a line that was brought in by
/// a prefetch (the "tag bit" event, reported by the hierarchy through
/// [`AccessOutcome::first_prefetch_use`]), prefetch the next `degree`
/// sequential lines.
///
/// [`AccessOutcome::first_prefetch_use`]: prefender_sim::AccessOutcome
#[derive(Debug, Clone)]
pub struct TaggedPrefetcher {
    line_size: u64,
    degree: u32,
    issued: u64,
}

impl TaggedPrefetcher {
    /// Creates a tagged prefetcher for caches with `line_size`-byte lines,
    /// prefetching `degree` sequential lines per trigger.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two or `degree` is zero.
    pub fn new(line_size: u64, degree: u32) -> Self {
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        assert!(degree > 0, "degree must be positive");
        TaggedPrefetcher { line_size, degree, issued: 0 }
    }

    /// The configured prefetch degree.
    pub fn degree(&self) -> u32 {
        self.degree
    }
}

impl Prefetcher for TaggedPrefetcher {
    fn name(&self) -> &str {
        "tagged"
    }

    fn on_access_into(
        &mut self,
        ev: &AccessEvent,
        resident: &dyn Fn(Addr) -> bool,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let trigger = ev.l1_miss() || ev.outcome.first_prefetch_use;
        if !trigger {
            return;
        }
        let before = out.len();
        let line = ev.vaddr.line(self.line_size);
        for k in 1..=self.degree as i64 {
            if let Some(next) = line.offset(k * self.line_size as i64) {
                if !resident(next) {
                    out.push(PrefetchRequest::new(next, PrefetchSource::Basic));
                    prefender_obs::trace_event(|| prefender_obs::TraceEvent::PrefetchPropose {
                        at: u64::from(ev.now),
                        core: ev.core as u32,
                        pc: ev.pc,
                        line: next.raw(),
                    });
                }
            }
        }
        self.issued += (out.len() - before) as u64;
    }

    fn retire_interest(&self) -> crate::RetireInterest {
        crate::RetireInterest::None
    }

    fn issued(&self) -> u64 {
        self.issued
    }

    fn reset(&mut self) {
        self.issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::test_access;
    use prefender_sim::Level;

    #[test]
    fn miss_triggers_next_line() {
        let mut t = TaggedPrefetcher::new(64, 1);
        let reqs = t.on_access(&test_access(0x8000, 0x1010, false), &|_| false);
        assert_eq!(reqs, vec![PrefetchRequest::new(Addr::new(0x1040), PrefetchSource::Basic)]);
        assert_eq!(t.issued(), 1);
    }

    #[test]
    fn plain_hit_does_not_trigger() {
        let mut t = TaggedPrefetcher::new(64, 1);
        assert!(t.on_access(&test_access(0x8000, 0x1000, true), &|_| false).is_empty());
    }

    #[test]
    fn first_prefetch_use_chains() {
        let mut t = TaggedPrefetcher::new(64, 1);
        let mut ev = test_access(0x8000, 0x1040, true);
        ev.outcome.first_prefetch_use = true;
        ev.outcome.served_by = Level::L1;
        let reqs = t.on_access(&ev, &|_| false);
        assert_eq!(reqs[0].addr, Addr::new(0x1080));
    }

    #[test]
    fn resident_lines_skipped() {
        let mut t = TaggedPrefetcher::new(64, 2);
        let reqs = t.on_access(&test_access(0x8000, 0x1000, false), &|a| a.raw() == 0x1040);
        assert_eq!(reqs, vec![PrefetchRequest::new(Addr::new(0x1080), PrefetchSource::Basic)]);
    }

    #[test]
    fn degree_controls_count() {
        let mut t = TaggedPrefetcher::new(64, 4);
        let reqs = t.on_access(&test_access(0x8000, 0x1000, false), &|_| false);
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[3].addr, Addr::new(0x1100));
    }

    #[test]
    #[should_panic(expected = "degree must be positive")]
    fn zero_degree_rejected() {
        let _ = TaggedPrefetcher::new(64, 0);
    }

    #[test]
    fn reset_clears_counter() {
        let mut t = TaggedPrefetcher::new(64, 1);
        t.on_access(&test_access(0x8000, 0x1000, false), &|_| false);
        t.reset();
        assert_eq!(t.issued(), 0);
    }
}
