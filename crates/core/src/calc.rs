//! The calculation buffer: per-register `(fva, sc)` tracking — Table III.
//!
//! For every architectural register `r` the Scale Tracker keeps
//!
//! * `fva_r` — the register's *fixed value*: `Some(v)` when every
//!   calculation feeding `r` involved only constants, otherwise `None`
//!   (the paper's *NA*);
//! * `sc_r` — the register's *scale*: the stride by which the value steps
//!   when a contributing variable increments. `None` (*NA*) when the value
//!   is a pure constant — a constant address never selects among eviction
//!   cachelines.
//!
//! At program start the state is `fva = NA, sc = 1`. Addition/subtraction
//! and multiplication/shifts propagate the pair per Table III; any other
//! writer reinitializes the destination.

use prefender_isa::{Instr, Operand, Reg, NUM_REGS};

/// One register's tracked state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegTrack {
    /// The fixed value, `None` = the paper's *NA*.
    pub fva: Option<i64>,
    /// The scale, `None` = *NA* (pure constant). Stored non-negative.
    pub sc: Option<i64>,
}

impl RegTrack {
    /// The initial state: `fva = NA, sc = 1`.
    pub const INIT: RegTrack = RegTrack { fva: None, sc: Some(1) };

    fn constant(v: i64) -> Self {
        RegTrack { fva: Some(v), sc: Some(1) }
    }

    /// Control-flow join of two tracked states: a component survives only
    /// when both paths agree. A disagreeing `fva` is not a fixed value and
    /// a disagreeing `sc` has no single stride, so both degrade to *NA* —
    /// the conservative direction for a *predicted* prefetch (the runtime
    /// tracker follows one concrete path and never joins; static mirrors
    /// of Table III running over a CFG do).
    pub fn join(self, other: RegTrack) -> RegTrack {
        RegTrack {
            fva: if self.fva == other.fva { self.fva } else { None },
            sc: if self.sc == other.sc { self.sc } else { None },
        }
    }
}

impl Default for RegTrack {
    fn default() -> Self {
        Self::INIT
    }
}

/// Normalizes a scale: magnitudes only (a negative stride selects the same
/// set of cachelines), `0` collapses to *NA* (no stepping at all).
fn norm(sc: i64) -> Option<i64> {
    match sc.checked_abs() {
        Some(0) | None => None,
        Some(v) => Some(v),
    }
}

/// Saturating-checked product of two scales; overflow → `None` (a scale
/// beyond `i64` is far past any page size, so *NA* is the conservative
/// answer and what little hardware width the paper budgets would do).
fn mul_sc(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(x), Some(y)) => x.checked_mul(y).and_then(norm),
        _ => None,
    }
}

/// `min` of two scales; an *NA* side yields the other (the paper's NA/NA
/// rows assume both defined — when one degenerated to NA we keep the
/// usable one).
fn min_sc(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) => Some(x),
        (None, Some(y)) => Some(y),
        (None, None) => None,
    }
}

/// The per-register calculation buffer (paper Figure 2, "Calculation
/// Buffer"; update rules in Table III).
///
/// # Examples
///
/// The paper's Figure 5 — `array[secret × 0x200]`:
///
/// ```
/// use prefender_core::CalculationBuffer;
/// use prefender_isa::{Program, Reg};
///
/// let p = Program::parse(
///     "
///     ld   r1, 0(r0)      ; r1 = secret (variable)
///     li   r3, 0x200
///     mul  r4, r1, r3     ; r4 = secret * 0x200
///     li   r2, 0x100000
///     add  r5, r2, r4     ; r5 = arr_addr + r4
///     ",
/// ).unwrap();
/// let mut buf = CalculationBuffer::new();
/// for i in p.instrs() {
///     buf.apply(i);
/// }
/// assert_eq!(buf.get(Reg::R5).sc, Some(0x200)); // the tracked scale
/// assert_eq!(buf.get(Reg::R5).fva, None);       // value depends on a variable
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalculationBuffer {
    regs: [RegTrack; NUM_REGS],
}

impl CalculationBuffer {
    /// All registers at `fva = NA, sc = 1`.
    pub fn new() -> Self {
        CalculationBuffer { regs: [RegTrack::INIT; NUM_REGS] }
    }

    /// The tracked state of `r`.
    pub fn get(&self, r: Reg) -> RegTrack {
        self.regs[r.index()]
    }

    /// Overrides a register's state (test setup).
    pub fn set(&mut self, r: Reg, t: RegTrack) {
        self.regs[r.index()] = t;
    }

    /// Resets every register to the initial state.
    pub fn reset(&mut self) {
        self.regs = [RegTrack::INIT; NUM_REGS];
    }

    fn reinit(&mut self, rd: Reg) {
        self.regs[rd.index()] = RegTrack::INIT;
    }

    /// Applies one retired instruction's Table III rule.
    pub fn apply(&mut self, instr: &Instr) {
        match *instr {
            // Data movement.
            Instr::LoadImm { rd, imm } => self.regs[rd.index()] = RegTrack::constant(imm),
            Instr::Load { rd, .. } => self.reinit(rd), // loaded value = unknown variable
            Instr::Mov { rd, rs } => self.regs[rd.index()] = self.regs[rs.index()],

            // Addition / subtraction.
            Instr::Add { rd, a, b } => self.additive(rd, a, b, false),
            Instr::Sub { rd, a, b } => self.additive(rd, a, b, true),

            // Multiplication / shifts.
            Instr::Mul { rd, a, b } => self.multiplicative(rd, a, b, MulKind::Mul),
            Instr::Shl { rd, a, b } => self.multiplicative(rd, a, b, MulKind::Shl),
            Instr::Shr { rd, a, b } => self.multiplicative(rd, a, b, MulKind::Shr),

            // "Otherwise": conservative reinitialization.
            Instr::And { rd, .. } | Instr::Or { rd, .. } | Instr::Xor { rd, .. } => self.reinit(rd),
            Instr::Rdtsc { rd } => self.reinit(rd),

            // No destination register: nothing to track.
            Instr::Store { .. }
            | Instr::Flush { .. }
            | Instr::Nop
            | Instr::Jmp { .. }
            | Instr::Bnz { .. }
            | Instr::Beq { .. }
            | Instr::Blt { .. }
            | Instr::Halt => {}
        }
    }

    fn additive(&mut self, rd: Reg, a: Reg, b: Operand, subtract: bool) {
        let s0 = self.regs[a.index()];
        let out = match b {
            Operand::Imm(imm) => match s0.fva {
                // Row: add rd, rs0, imm — fva NA ⇒ (NA, sc_s0).
                None => RegTrack { fva: None, sc: s0.sc },
                // Row: fva valid ⇒ (fva ± imm, 1).
                Some(f0) => RegTrack::constant(if subtract {
                    f0.wrapping_sub(imm)
                } else {
                    f0.wrapping_add(imm)
                }),
            },
            Operand::Reg(rs1) => {
                let s1 = self.regs[rs1.index()];
                match (s0.fva, s1.fva) {
                    // Valid + Valid ⇒ (fva0 ± fva1, NA): pure constant.
                    (Some(f0), Some(f1)) => RegTrack {
                        fva: Some(if subtract { f0.wrapping_sub(f1) } else { f0.wrapping_add(f1) }),
                        sc: None,
                    },
                    // NA + Valid ⇒ (NA, sc_s0): the constant side only offsets.
                    (None, Some(_)) => RegTrack { fva: None, sc: s0.sc },
                    // Valid + NA ⇒ (NA, sc_s1).
                    (Some(_), None) => RegTrack { fva: None, sc: s1.sc },
                    // NA + NA ⇒ (NA, min(sc_s0, sc_s1)): either scale steps
                    // the sum; the smaller one is less likely to leave the page.
                    (None, None) => RegTrack { fva: None, sc: min_sc(s0.sc, s1.sc) },
                }
            }
        };
        self.regs[rd.index()] = out;
    }

    fn multiplicative(&mut self, rd: Reg, a: Reg, b: Operand, kind: MulKind) {
        let s0 = self.regs[a.index()];
        let out = match b {
            Operand::Imm(imm) => {
                let factor = kind.factor(imm);
                match s0.fva {
                    // Row: mul rd, rs0, imm — fva NA ⇒ (NA, sc_s0 × imm).
                    None => RegTrack { fva: None, sc: mul_sc(s0.sc, factor) },
                    // Row: fva valid ⇒ (fva × imm, 1).
                    Some(f0) => match kind.apply(f0, imm) {
                        Some(v) => RegTrack::constant(v),
                        None => RegTrack::INIT,
                    },
                }
            }
            Operand::Reg(rs1) => {
                let s1 = self.regs[rs1.index()];
                match (s0.fva, s1.fva) {
                    // Valid × Valid ⇒ (fva0 × fva1, NA).
                    (Some(f0), Some(f1)) => match kind.apply(f0, f1) {
                        Some(v) => RegTrack { fva: Some(v), sc: None },
                        None => RegTrack::INIT,
                    },
                    // NA × Valid ⇒ (NA, sc_s0 × fva_s1).
                    (None, Some(f1)) => RegTrack { fva: None, sc: mul_sc(s0.sc, kind.factor(f1)) },
                    // Valid × NA ⇒ (NA, fva_s0 × sc_s1).
                    (Some(f0), None) => match kind {
                        MulKind::Mul => RegTrack { fva: None, sc: mul_sc(Some(f0), s1.sc) },
                        // `const << variable` / `const >> variable`:
                        // no linear scale exists — reinitialize.
                        MulKind::Shl | MulKind::Shr => RegTrack::INIT,
                    },
                    // NA × NA ⇒ (NA, sc_s0 × sc_s1).
                    (None, None) => match kind {
                        MulKind::Mul => RegTrack { fva: None, sc: mul_sc(s0.sc, s1.sc) },
                        MulKind::Shl | MulKind::Shr => RegTrack::INIT,
                    },
                }
            }
        };
        self.regs[rd.index()] = out;
    }
}

impl Default for CalculationBuffer {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Clone, Copy)]
enum MulKind {
    Mul,
    Shl,
    Shr,
}

impl MulKind {
    /// The multiplicative factor a shift amount corresponds to, or the
    /// immediate itself for `mul`. `None` when no linear factor exists.
    fn factor(self, amount: i64) -> Option<i64> {
        match self {
            MulKind::Mul => Some(amount),
            MulKind::Shl => {
                if (0..63).contains(&amount) {
                    Some(1i64 << amount)
                } else {
                    None
                }
            }
            // A right shift *divides* the stride. Division is modelled as
            // the reciprocal factor only when exact later; conservatively
            // no linear factor unless the shift is zero.
            MulKind::Shr => {
                if amount == 0 {
                    Some(1)
                } else {
                    None
                }
            }
        }
    }

    /// Applies the operation to two constants.
    fn apply(self, a: i64, b: i64) -> Option<i64> {
        match self {
            MulKind::Mul => Some(a.wrapping_mul(b)),
            MulKind::Shl => {
                if (0..64).contains(&b) {
                    Some(((a as u64) << b) as i64)
                } else {
                    None
                }
            }
            MulKind::Shr => {
                if (0..64).contains(&b) {
                    Some(((a as u64) >> b) as i64)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_isa::Program;

    fn run(src: &str) -> CalculationBuffer {
        let p = Program::parse(src).unwrap();
        let mut buf = CalculationBuffer::new();
        for i in p.instrs() {
            buf.apply(i);
        }
        buf
    }

    #[test]
    fn initial_state() {
        let buf = CalculationBuffer::new();
        for r in Reg::all() {
            assert_eq!(buf.get(r), RegTrack { fva: None, sc: Some(1) });
        }
    }

    #[test]
    fn load_imm_sets_constant() {
        let buf = run("li r1, 0x200\n");
        assert_eq!(buf.get(Reg::R1), RegTrack { fva: Some(0x200), sc: Some(1) });
    }

    #[test]
    fn memory_load_reinitializes() {
        let buf = run("li r1, 7\nld r1, 0(r2)\n");
        assert_eq!(buf.get(Reg::R1), RegTrack::INIT);
    }

    #[test]
    fn mov_copies_track() {
        let buf = run("li r1, 5\nmov r2, r1\n");
        assert_eq!(buf.get(Reg::R2), RegTrack { fva: Some(5), sc: Some(1) });
    }

    // ---- Table III: addition rows ----

    #[test]
    fn add_imm_to_variable_keeps_scale() {
        // r1 is a variable with scale 0x200 (via mul); adding an immediate
        // offset must not change the scale.
        let buf = run("ld r1, 0(r0)\nli r2, 0x200\nmul r3, r1, r2\nadd r4, r3, 0x40\n");
        assert_eq!(buf.get(Reg::R4), RegTrack { fva: None, sc: Some(0x200) });
    }

    #[test]
    fn add_imm_to_constant_is_constant() {
        let buf = run("li r1, 0x100\nadd r2, r1, 0x20\n");
        assert_eq!(buf.get(Reg::R2), RegTrack { fva: Some(0x120), sc: Some(1) });
    }

    #[test]
    fn sub_imm_from_constant() {
        let buf = run("li r1, 0x100\nsub r2, r1, 0x20\n");
        assert_eq!(buf.get(Reg::R2).fva, Some(0xE0));
    }

    #[test]
    fn add_two_constants_scale_na() {
        // Valid + Valid ⇒ scale NA (pure constant can't select cachelines).
        let buf = run("li r1, 0x100\nli r2, 0x30\nadd r3, r1, r2\n");
        assert_eq!(buf.get(Reg::R3), RegTrack { fva: Some(0x130), sc: None });
    }

    #[test]
    fn add_variable_and_constant_takes_variable_scale() {
        let buf =
            run("ld r1, 0(r0)\nli r2, 0x400\nmul r3, r1, r2\nli r4, 0x100000\nadd r5, r4, r3\n");
        // r4 valid + r3 NA ⇒ scale of r3.
        assert_eq!(buf.get(Reg::R5), RegTrack { fva: None, sc: Some(0x400) });
    }

    #[test]
    fn add_two_variables_takes_min_scale() {
        // 128*i + 32*j: either index stepping moves the sum; min = 32.
        let buf = run("
            ld r1, 0(r0)
            ld r2, 8(r0)
            li r3, 128
            li r4, 32
            mul r5, r1, r3
            mul r6, r2, r4
            add r7, r5, r6
            ");
        assert_eq!(buf.get(Reg::R7), RegTrack { fva: None, sc: Some(32) });
    }

    // ---- Table III: multiplication rows ----

    #[test]
    fn mul_variable_by_imm_scales() {
        let buf = run("ld r1, 0(r0)\nmul r2, r1, 0x200\n");
        assert_eq!(buf.get(Reg::R2), RegTrack { fva: None, sc: Some(0x200) });
    }

    #[test]
    fn mul_constant_by_imm_is_constant() {
        let buf = run("li r1, 6\nmul r2, r1, 7\n");
        assert_eq!(buf.get(Reg::R2), RegTrack { fva: Some(42), sc: Some(1) });
    }

    #[test]
    fn mul_two_constants_scale_na() {
        let buf = run("li r1, 6\nli r2, 7\nmul r3, r1, r2\n");
        assert_eq!(buf.get(Reg::R3), RegTrack { fva: Some(42), sc: None });
    }

    #[test]
    fn mul_variable_by_constant_reg() {
        // The Figure 5 pattern: r1 variable (sc 1), r3 constant 0x200
        // ⇒ sc = 1 × 0x200.
        let buf = run("ld r1, 0(r0)\nli r3, 0x200\nmul r4, r1, r3\n");
        assert_eq!(buf.get(Reg::R4), RegTrack { fva: None, sc: Some(0x200) });
    }

    #[test]
    fn mul_constant_reg_by_variable() {
        let buf = run("li r3, 0x80\nld r1, 0(r0)\nmul r4, r3, r1\n");
        assert_eq!(buf.get(Reg::R4), RegTrack { fva: None, sc: Some(0x80) });
    }

    #[test]
    fn mul_two_variables_multiplies_scales() {
        let buf = run("
            ld r1, 0(r0)
            ld r2, 8(r0)
            mul r3, r1, 16    ; sc 16
            mul r4, r2, 8     ; sc 8
            mul r5, r3, r4    ; sc 128
            ");
        assert_eq!(buf.get(Reg::R5), RegTrack { fva: None, sc: Some(128) });
    }

    // ---- Shifts ----

    #[test]
    fn shl_by_imm_scales_power_of_two() {
        let buf = run("ld r1, 0(r0)\nshl r2, r1, 9\n");
        assert_eq!(buf.get(Reg::R2), RegTrack { fva: None, sc: Some(512) });
    }

    #[test]
    fn shl_constant_by_imm() {
        let buf = run("li r1, 3\nshl r2, r1, 4\n");
        assert_eq!(buf.get(Reg::R2), RegTrack { fva: Some(48), sc: Some(1) });
    }

    #[test]
    fn shr_by_imm_conservative() {
        // Right shift destroys the linear-scale model; expect NA scale.
        let buf = run("ld r1, 0(r0)\nmul r2, r1, 0x200\nshr r3, r2, 3\n");
        assert_eq!(buf.get(Reg::R3).sc, None);
    }

    #[test]
    fn shl_by_variable_reinitializes() {
        let buf = run("li r1, 4\nld r2, 0(r0)\nshl r3, r1, r2\n");
        assert_eq!(buf.get(Reg::R3), RegTrack::INIT);
    }

    // ---- "Otherwise" ----

    #[test]
    fn logic_ops_reinitialize() {
        let buf = run(
            "ld r1, 0(r0)\nmul r2, r1, 0x200\nand r3, r2, 0xff\nor r4, r2, 1\nxor r5, r2, r2\n",
        );
        assert_eq!(buf.get(Reg::R3), RegTrack::INIT);
        assert_eq!(buf.get(Reg::R4), RegTrack::INIT);
        assert_eq!(buf.get(Reg::R5), RegTrack::INIT);
    }

    #[test]
    fn rdtsc_reinitializes() {
        let buf = run("li r1, 5\nrdtsc r1\n");
        assert_eq!(buf.get(Reg::R1), RegTrack::INIT);
    }

    // ---- The full Figure 5 walkthrough ----

    #[test]
    fn figure_5_example() {
        // load r0, 4(sp); load r1, 0(r0); load r2, arr_addr; load r3, 0x200;
        // mul r4, r1, r3; add r5, r2, r4; load r6, 0(r5)
        let buf = run("
            ld  r0, 4(r14)      ; r0 = secret's address (variable)
            ld  r1, 0(r0)       ; r1 = secret (variable)
            li  r2, 0x100000    ; r2 = arr_addr (immediate)
            li  r3, 0x200       ; r3 = 0x200 (immediate)
            mul r4, r1, r3      ; r4 = secret*0x200   -> sc 0x200, fva NA
            add r5, r2, r4      ; r5 = arr_addr + r4  -> sc 0x200, fva NA
            ");
        assert_eq!(buf.get(Reg::R0), RegTrack { fva: None, sc: Some(1) });
        assert_eq!(buf.get(Reg::R1), RegTrack { fva: None, sc: Some(1) });
        assert_eq!(buf.get(Reg::R2).fva, Some(0x100000));
        assert_eq!(buf.get(Reg::R3).fva, Some(0x200));
        assert_eq!(buf.get(Reg::R4), RegTrack { fva: None, sc: Some(0x200) });
        assert_eq!(buf.get(Reg::R5), RegTrack { fva: None, sc: Some(0x200) });
    }

    #[test]
    fn complicated_pattern_from_section_iv_b() {
        // 128*i + 32*j + imm: scales min(128, 32) = 32 survives the offset.
        let buf = run("
            ld r1, 0(r0)
            ld r2, 8(r0)
            mul r3, r1, 128
            mul r4, r2, 32
            add r5, r3, r4
            add r6, r5, 652
            ");
        assert_eq!(buf.get(Reg::R6), RegTrack { fva: None, sc: Some(32) });
    }

    #[test]
    fn negative_scale_normalized() {
        let buf = run("ld r1, 0(r0)\nmul r2, r1, -0x200\n");
        assert_eq!(buf.get(Reg::R2).sc, Some(0x200));
    }

    #[test]
    fn zero_scale_collapses_to_na() {
        let buf = run("ld r1, 0(r0)\nmul r2, r1, 0\n");
        assert_eq!(buf.get(Reg::R2).sc, None);
    }

    #[test]
    fn overflowing_scale_collapses_to_na() {
        let buf =
            run("ld r1, 0(r0)\nmul r2, r1, 0x4000000000000000\nmul r3, r2, 0x4000000000000000\n");
        assert_eq!(buf.get(Reg::R3).sc, None);
    }

    #[test]
    fn join_keeps_agreement_drops_disagreement() {
        let a = RegTrack { fva: Some(0x100), sc: Some(0x200) };
        assert_eq!(a.join(a), a);
        let b = RegTrack { fva: Some(0x100), sc: Some(0x40) };
        assert_eq!(a.join(b), RegTrack { fva: Some(0x100), sc: None });
        let c = RegTrack { fva: None, sc: Some(0x200) };
        assert_eq!(a.join(c), RegTrack { fva: None, sc: Some(0x200) });
        assert_eq!(a.join(RegTrack::INIT), RegTrack { fva: None, sc: None });
    }

    #[test]
    fn reset_restores_initial() {
        let mut buf = run("li r1, 7\n");
        buf.reset();
        assert_eq!(buf.get(Reg::R1), RegTrack::INIT);
    }
}
