//! The Scale Tracker (ST): phase-2 defense — paper Section IV-B.

use prefender_isa::{Instr, Reg};
use prefender_sim::Addr;

use crate::calc::CalculationBuffer;
use crate::config::StConfig;

/// Predicts the other eviction cachelines a victim load could touch, from
/// the load's address-calculation history.
///
/// When a load `ld rd, off(rs)` executes with target address `addr` and
/// the tracked scale of `rs` satisfies `line_size < sc < page_size`, the
/// addresses `addr ± sc` (on the same page) are candidate prefetches:
/// they are the lines the same load would touch for a neighbouring secret
/// value, so prefetching them hides which one the real secret selected.
///
/// # Examples
///
/// ```
/// use prefender_core::{ScaleTracker, StConfig};
/// use prefender_isa::{Program, Reg};
/// use prefender_sim::Addr;
///
/// let mut st = ScaleTracker::new(StConfig::paper());
/// for i in Program::parse("ld r1, 0(r0)\nmul r5, r1, 0x200\n").unwrap().instrs() {
///     st.on_retire(i);
/// }
/// let c = st.candidates(Reg::R5, Addr::new(0x10_1800));
/// assert_eq!(c, vec![Addr::new(0x10_1A00), Addr::new(0x10_1600)]);
/// ```
#[derive(Debug, Clone)]
pub struct ScaleTracker {
    buf: CalculationBuffer,
    cfg: StConfig,
}

impl ScaleTracker {
    /// Creates a tracker with every register at the initial state.
    pub fn new(cfg: StConfig) -> Self {
        ScaleTracker { buf: CalculationBuffer::new(), cfg }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &StConfig {
        &self.cfg
    }

    /// Read access to the calculation buffer (tests, debugging).
    pub fn calc(&self) -> &CalculationBuffer {
        &self.buf
    }

    /// Observes one retired instruction (Table III update).
    pub fn on_retire(&mut self, instr: &Instr) {
        self.buf.apply(instr);
    }

    /// The *usable* scale of `base` — `Some(sc)` only when
    /// `line_size < sc < page_size`, the paper's prefetch condition.
    pub fn usable_scale(&self, base: Reg) -> Option<u64> {
        let sc = self.buf.get(base).sc?;
        let sc = sc as u64;
        (sc > self.cfg.line_size && sc < self.cfg.page_size).then_some(sc)
    }

    /// The candidate prefetch addresses for a load through `base` hitting
    /// `addr`: `addr + sc` then `addr - sc`, each only if it stays on
    /// `addr`'s page. Empty when the scale is not usable.
    pub fn candidates(&self, base: Reg, addr: Addr) -> Vec<Addr> {
        match self.usable_scale(base) {
            Some(sc) => self.candidates_at(sc, addr).collect(),
            None => Vec::new(),
        }
    }

    /// The candidate prefetch addresses for an already-resolved usable
    /// scale `sc`: `addr + sc` then `addr - sc`, each only if it stays on
    /// `addr`'s page. The allocation-free inner loop of
    /// [`ScaleTracker::candidates`] — hot-path callers that looked the
    /// scale up once (`Prefender::on_access`) iterate this directly
    /// instead of paying a second register lookup and a `Vec`.
    pub fn candidates_at(&self, sc: u64, addr: Addr) -> impl Iterator<Item = Addr> + '_ {
        let page_size = self.cfg.page_size;
        [sc as i64, -(sc as i64)]
            .into_iter()
            .filter_map(move |delta| addr.offset(delta))
            .filter(move |cand| cand.same_page(addr, page_size))
    }

    /// Resets the calculation buffer (e.g. on context switch).
    pub fn reset(&mut self) {
        self.buf.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_isa::Program;

    fn tracker(src: &str) -> ScaleTracker {
        let mut st = ScaleTracker::new(StConfig::paper());
        for i in Program::parse(src).unwrap().instrs() {
            st.on_retire(i);
        }
        st
    }

    #[test]
    fn scale_within_bounds_is_usable() {
        let st = tracker("ld r1, 0(r0)\nmul r5, r1, 0x200\n");
        assert_eq!(st.usable_scale(Reg::R5), Some(0x200));
    }

    #[test]
    fn sub_line_scale_rejected() {
        // sc = 32 <= line size 64: both candidates land in the same line.
        let st = tracker("ld r1, 0(r0)\nmul r5, r1, 32\n");
        assert_eq!(st.usable_scale(Reg::R5), None);
        assert!(st.candidates(Reg::R5, Addr::new(0x1000)).is_empty());
    }

    #[test]
    fn line_sized_scale_rejected() {
        // The paper requires *larger than* the cacheline size.
        let st = tracker("ld r1, 0(r0)\nmul r5, r1, 64\n");
        assert_eq!(st.usable_scale(Reg::R5), None);
    }

    #[test]
    fn page_sized_scale_rejected() {
        let st = tracker("ld r1, 0(r0)\nmul r5, r1, 4096\n");
        assert_eq!(st.usable_scale(Reg::R5), None);
    }

    #[test]
    fn constant_register_not_usable() {
        let st = tracker("li r5, 0x200\n");
        assert_eq!(st.usable_scale(Reg::R5), None, "pure constant has sc = 1");
    }

    #[test]
    fn candidates_respect_page_boundary() {
        let st = tracker("ld r1, 0(r0)\nmul r5, r1, 0x800\n");
        // addr near page start: addr - sc crosses the boundary.
        let c = st.candidates(Reg::R5, Addr::new(0x10_0400));
        assert_eq!(c, vec![Addr::new(0x10_0C00)]);
        // addr near page end: addr + sc crosses.
        let c = st.candidates(Reg::R5, Addr::new(0x10_0C00));
        assert_eq!(c, vec![Addr::new(0x10_0400)]);
    }

    #[test]
    fn both_candidates_mid_page() {
        let st = tracker("ld r1, 0(r0)\nmul r5, r1, 0x200\n");
        let c = st.candidates(Reg::R5, Addr::new(0x10_0800));
        assert_eq!(c, vec![Addr::new(0x10_0A00), Addr::new(0x10_0600)]);
    }

    #[test]
    fn reset_clears_learning() {
        let mut st = tracker("ld r1, 0(r0)\nmul r5, r1, 0x200\n");
        st.reset();
        assert_eq!(st.usable_scale(Reg::R5), None);
    }
}
