//! Analytical hardware-cost model — paper Section V-E.
//!
//! The paper argues PREFENDER's hardware is cheap by counting SRAM bits
//! and datapath widths; this module reproduces that arithmetic from a
//! [`PrefenderConfig`] so the `repro hwcost` harness can print the same
//! upper bounds (ST: hundreds of bytes; AT: < 3 KB; RP: 400 bytes).

use prefender_isa::NUM_REGS;

use crate::config::PrefenderConfig;

/// Bit widths used by the paper's Section V-E accounting.
const ST_VALUE_BITS: u64 = 16; // fva / sc values: prefetch stays in a page
const AT_ENTRY_BITS: u64 = 64; // "even if each value of the buffer is 64-bit"
const AT_DIFFMIN_BITS: u64 = 20; // enough for a 1 MB L1D
const RP_SC_BITS: u64 = 16;
const RP_BLK_BITS: u64 = 64;
const RP_MODULUS_BITS: u64 = 9; // set-index width of a 64 KB 2-way L1D

/// SRAM and datapath budget of one PREFENDER instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HwCost {
    /// Scale Tracker SRAM bits (calculation buffer).
    pub st_sram_bits: u64,
    /// Access Tracker SRAM bits (access buffers).
    pub at_sram_bits: u64,
    /// Record Protector SRAM bits (scale buffer + protected-scale regs).
    pub rp_sram_bits: u64,
    /// Width of the RP modulus datapath in bits.
    pub rp_modulus_bits: u64,
}

impl HwCost {
    /// Total SRAM bits.
    pub fn total_bits(&self) -> u64 {
        self.st_sram_bits + self.at_sram_bits + self.rp_sram_bits
    }

    /// Total SRAM bytes (rounded up).
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }
}

/// Computes the Section V-E upper bounds for a configuration.
pub fn hw_cost(cfg: &PrefenderConfig) -> HwCost {
    let st_sram_bits = if cfg.st.is_some() {
        // Two 16-bit values (fva, sc) per architectural register.
        NUM_REGS as u64 * 2 * ST_VALUE_BITS
    } else {
        0
    };

    let at_sram_bits = cfg.at.map_or(0, |at| {
        let per_buffer = 64 // InstAddr
            + at.entries_per_buffer as u64 * (AT_ENTRY_BITS + 1) // entries + valid
            + AT_DIFFMIN_BITS
            + 2; // buffer valid + protected flag
        at.n_buffers as u64 * per_buffer
    });

    let rp_sram_bits = cfg.rp.map_or(0, |rp| {
        let entry = RP_SC_BITS + RP_BLK_BITS; // 80 bits, as in the paper
        let scale_buffer = rp.scale_buffer_entries as u64 * entry;
        // One 80-bit protected-scale register per access buffer.
        let protected_regs = cfg.at.map_or(0, |at| at.n_buffers as u64 * entry);
        scale_buffer + protected_regs
    });

    HwCost {
        st_sram_bits,
        at_sram_bits,
        rp_sram_bits,
        rp_modulus_bits: if cfg.rp.is_some() { RP_MODULUS_BITS } else { 0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budgets_hold() {
        let c = hw_cost(&PrefenderConfig::full());
        // ST: "hundreds of bytes in total for dozens of registers".
        assert_eq!(c.st_sram_bits / 8, 128);
        assert!(c.st_sram_bits / 8 < 1024);
        // AT: "only <3KB SRAMs are required" for 32 buffers × 8 entries.
        assert!(c.at_sram_bits / 8 < 3 * 1024, "AT bytes = {}", c.at_sram_bits / 8);
        // RP: "400 bytes are needed" (8-entry scale buffer + 32 regs, 80 bits each).
        assert_eq!(c.rp_sram_bits / 8, (8 + 32) * 80 / 8);
        assert_eq!(c.rp_sram_bits / 8, 400);
        assert_eq!(c.rp_modulus_bits, 9);
    }

    #[test]
    fn disabled_units_cost_nothing() {
        let c = hw_cost(&PrefenderConfig { st: None, at: None, rp: None });
        assert_eq!(c.total_bits(), 0);
        assert_eq!(c.total_bytes(), 0);
    }

    #[test]
    fn totals_are_sums() {
        let c = hw_cost(&PrefenderConfig::full());
        assert_eq!(c.total_bits(), c.st_sram_bits + c.at_sram_bits + c.rp_sram_bits);
        assert_eq!(c.total_bytes(), c.total_bits().div_ceil(8));
    }
}
