//! The composed PREFENDER prefetcher.

use prefender_prefetch::{AccessEvent, PrefetchRequest, Prefetcher, RetireEvent, RetireInterest};
use prefender_sim::{AccessKind, Addr, PrefetchSource};

use crate::access_tracker::AccessTracker;
use crate::config::{AtConfig, PrefenderConfig, RpConfig, StConfig};
use crate::record_protector::RecordProtector;
use crate::scale_tracker::ScaleTracker;
use crate::stats::PrefenderStats;

/// The PREFENDER secure prefetcher: Scale Tracker + Access Tracker +
/// Record Protector, with an optional lower-priority basic prefetcher.
///
/// Attach one instance per core (per L1D) via
/// [`Machine::set_prefetcher`](https://docs.rs/prefender-cpu); the machine
/// feeds it retire and access events and issues its requests.
///
/// # Examples
///
/// ```
/// use prefender_core::Prefender;
/// use prefender_prefetch::{Prefetcher, StridePrefetcher};
///
/// // The paper's Table V column 10 configuration:
/// // full PREFENDER with a Stride basic prefetcher, 32 access buffers.
/// let p = Prefender::builder(64, 4096)
///     .access_buffers(32)
///     .basic(Box::new(StridePrefetcher::default_config()))
///     .build();
/// assert_eq!(p.name(), "prefender");
/// ```
pub struct Prefender {
    st: Option<ScaleTracker>,
    at: Option<AccessTracker>,
    rp: Option<RecordProtector>,
    basic: Option<Box<dyn Prefetcher>>,
    stats: PrefenderStats,
    line_size: u64,
    /// When false, the Scale Tracker still tracks dataflow and feeds the
    /// Record Protector's scale buffer, but issues no prefetches of its
    /// own — the paper's "PREFENDER-AT+RP" configuration.
    st_prefetching: bool,
}

impl std::fmt::Debug for Prefender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prefender")
            .field("st", &self.st.is_some())
            .field("at", &self.at.is_some())
            .field("rp", &self.rp.is_some())
            .field("basic", &self.basic.as_ref().map(|b| b.name()))
            .field("stats", &self.stats)
            .finish()
    }
}

impl Prefender {
    /// Starts a builder with everything enabled at paper defaults for the
    /// given cacheline and page sizes.
    pub fn builder(line_size: u64, page_size: u64) -> PrefenderBuilder {
        PrefenderBuilder::new(line_size, page_size)
    }

    /// Builds directly from a [`PrefenderConfig`].
    pub fn from_config(cfg: PrefenderConfig) -> Self {
        let line_size = cfg.st.map(|s| s.line_size).or(cfg.at.map(|a| a.line_size)).unwrap_or(64);
        let mut at = cfg.at.map(AccessTracker::new);
        if let (Some(at), Some(rp)) = (at.as_mut(), cfg.rp.as_ref()) {
            at.set_protection_params(rp);
        }
        Prefender {
            st: cfg.st.map(ScaleTracker::new),
            at,
            rp: cfg.rp.map(RecordProtector::new),
            basic: None,
            stats: PrefenderStats::new(),
            line_size,
            st_prefetching: true,
        }
    }

    /// Per-unit prefetch counters.
    pub fn stats(&self) -> PrefenderStats {
        self.stats
    }

    /// The Scale Tracker, when enabled.
    pub fn scale_tracker(&self) -> Option<&ScaleTracker> {
        self.st.as_ref()
    }

    /// The Access Tracker, when enabled.
    pub fn access_tracker(&self) -> Option<&AccessTracker> {
        self.at.as_ref()
    }

    /// The Record Protector, when enabled.
    pub fn record_protector(&self) -> Option<&RecordProtector> {
        self.rp.as_ref()
    }

    /// The basic prefetcher, when attached.
    pub fn basic(&self) -> Option<&dyn Prefetcher> {
        self.basic.as_deref()
    }

    /// Number of currently protected access buffers (Figure 12's series).
    pub fn protected_count(&self) -> usize {
        self.at.as_ref().map_or(0, |at| at.protected_count())
    }
}

impl Prefetcher for Prefender {
    fn name(&self) -> &str {
        "prefender"
    }

    fn on_retire(&mut self, ev: &RetireEvent<'_>) {
        if let Some(st) = self.st.as_mut() {
            st.on_retire(ev.instr);
        }
        if let Some(b) = self.basic.as_mut() {
            b.on_retire(ev);
        }
    }

    fn retire_interest(&self) -> RetireInterest {
        // The Scale Tracker's Table III rules only fire for instructions
        // that write a register (everything else leaves the calculation
        // buffer untouched); the basic prefetcher contributes its own
        // interest. Without an ST the composite needs whatever the basic
        // prefetcher needs.
        let st = if self.st.is_some() { RetireInterest::RegWriters } else { RetireInterest::None };
        let basic = self.basic.as_ref().map_or(RetireInterest::None, |b| b.retire_interest());
        st.max(basic)
    }

    fn on_access_into(
        &mut self,
        ev: &AccessEvent,
        resident: &dyn Fn(Addr) -> bool,
        out: &mut Vec<PrefetchRequest>,
    ) {
        // ST, AT and RP watch loads only (the paper applies them to "all
        // the load instructions"); the basic prefetcher sees everything.
        if ev.kind == AccessKind::Read {
            let blk = ev.vaddr.line(self.line_size);

            // --- Scale Tracker: phase-2 defense (higher priority) ---
            // The scale is looked up once; prefetch candidates derive
            // from it directly (no second register lookup, no Vec).
            let mut st_scale = None;
            if let (Some(st), Some(base)) = (self.st.as_ref(), ev.base) {
                if let Some(sc) = st.usable_scale(base) {
                    st_scale = Some(sc);
                    if self.st_prefetching {
                        for cand in st.candidates_at(sc, ev.vaddr) {
                            if !resident(cand) {
                                out.push(PrefetchRequest::new(cand, PrefetchSource::ScaleTracker));
                                self.stats.st_prefetches += 1;
                            }
                        }
                    }
                }
            }

            // --- Record Protector stage 1: scale recording ---
            if let (Some(rp), Some(sc)) = (self.rp.as_mut(), st_scale) {
                rp.record(sc, blk.raw(), ev.now);
            }

            // --- Record Protector stage 2: does this access hit a pattern? ---
            let rp_hit = self.rp.as_mut().and_then(|rp| rp.hit(blk.raw()));

            // --- Access Tracker (+ RP stage 3): phase-3 defense ---
            if let Some(at) = self.at.as_mut() {
                let decision = at.on_load(ev.pc, blk, ev.now, rp_hit, resident);
                if let Some((addr, source)) = decision.prefetch {
                    out.push(PrefetchRequest::new(addr, source));
                    match source {
                        PrefetchSource::AccessTracker => self.stats.at_prefetches += 1,
                        PrefetchSource::RecordProtector => self.stats.rp_prefetches += 1,
                        _ => {}
                    }
                }
            }
        }

        // --- Basic prefetcher: lower priority, appended last ---
        if let Some(b) = self.basic.as_mut() {
            b.on_access_into(ev, resident, out);
        }
    }

    fn issued(&self) -> u64 {
        self.stats.total() + self.basic.as_ref().map_or(0, |b| b.issued())
    }

    fn reset(&mut self) {
        if let Some(st) = self.st.as_mut() {
            st.reset();
        }
        if let Some(at) = self.at.as_mut() {
            at.reset();
        }
        if let Some(rp) = self.rp.as_mut() {
            rp.reset();
        }
        if let Some(b) = self.basic.as_mut() {
            b.reset();
        }
        self.stats.reset();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Builder for [`Prefender`] — pick units, sizes and a basic prefetcher.
pub struct PrefenderBuilder {
    st: Option<StConfig>,
    at: Option<AtConfig>,
    rp: Option<RpConfig>,
    basic: Option<Box<dyn Prefetcher>>,
    st_prefetching: bool,
}

impl std::fmt::Debug for PrefenderBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefenderBuilder")
            .field("st", &self.st)
            .field("at", &self.at)
            .field("rp", &self.rp)
            .field("basic", &self.basic.as_ref().map(|b| b.name()))
            .finish()
    }
}

impl PrefenderBuilder {
    /// All units enabled at paper defaults for the given geometry.
    pub fn new(line_size: u64, page_size: u64) -> Self {
        PrefenderBuilder {
            st: Some(StConfig { line_size, page_size }),
            at: Some(AtConfig { line_size, ..AtConfig::paper() }),
            rp: Some(RpConfig::paper()),
            basic: None,
            st_prefetching: true,
        }
    }

    /// Enables or disables the Scale Tracker.
    #[must_use]
    pub fn scale_tracker(mut self, enabled: bool) -> Self {
        if !enabled {
            self.st = None;
        }
        self
    }

    /// Enables or disables the Access Tracker.
    #[must_use]
    pub fn access_tracker(mut self, enabled: bool) -> Self {
        if !enabled {
            self.at = None;
        }
        self
    }

    /// Sets the access-buffer count (Tables IV/V sweep 16/32/64).
    ///
    /// # Panics
    ///
    /// Panics if the Access Tracker was disabled.
    #[must_use]
    pub fn access_buffers(mut self, n: usize) -> Self {
        let at = self.at.as_mut().expect("access tracker is disabled");
        at.n_buffers = n;
        self
    }

    /// Replaces the whole Access Tracker configuration.
    #[must_use]
    pub fn at_config(mut self, cfg: AtConfig) -> Self {
        self.at = Some(cfg);
        self
    }

    /// Enables or disables the Record Protector.
    #[must_use]
    pub fn record_protector(mut self, enabled: bool) -> Self {
        if !enabled {
            self.rp = None;
        }
        self
    }

    /// Replaces the Record Protector configuration.
    #[must_use]
    pub fn rp_config(mut self, cfg: RpConfig) -> Self {
        self.rp = Some(cfg);
        self
    }

    /// Keeps the Scale Tracker's dataflow tracking and Record Protector
    /// feed but suppresses its prefetches — the paper's "AT+RP"
    /// configuration (RP is *defined* as linking ST and AT, so its scale
    /// buffer still needs the ST's recordings).
    #[must_use]
    pub fn scale_tracker_prefetching(mut self, enabled: bool) -> Self {
        self.st_prefetching = enabled;
        self
    }

    /// Attaches a basic prefetcher at lower priority.
    #[must_use]
    pub fn basic(mut self, p: Box<dyn Prefetcher>) -> Self {
        self.basic = Some(p);
        self
    }

    /// Builds the prefetcher.
    pub fn build(self) -> Prefender {
        let mut p =
            Prefender::from_config(PrefenderConfig { st: self.st, at: self.at, rp: self.rp });
        p.basic = self.basic;
        p.st_prefetching = self.st_prefetching;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_isa::{Instr, Program, Reg};
    use prefender_sim::{AccessOutcome, Cycle, Level};

    fn load_event(pc: u64, addr: u64, base: Reg) -> AccessEvent {
        AccessEvent {
            core: 0,
            pc,
            vaddr: Addr::new(addr),
            base: Some(base),
            kind: AccessKind::Read,
            outcome: AccessOutcome {
                latency: 200,
                served_by: Level::Memory,
                first_prefetch_use: false,
                prefetch_source: None,
            },
            now: Cycle::ZERO,
        }
    }

    fn retire_all(p: &mut Prefender, src: &str) {
        for i in Program::parse(src).unwrap().instrs() {
            p.on_retire(&RetireEvent { core: 0, pc: 0, instr: i, now: Cycle::ZERO });
        }
    }

    #[test]
    fn st_prefetches_both_neighbours() {
        let mut p =
            Prefender::builder(64, 4096).access_tracker(false).record_protector(false).build();
        retire_all(&mut p, "ld r1, 0(r0)\nmul r5, r1, 0x200\n");
        let reqs = p.on_access(&load_event(0x8000, 0x10_0800, Reg::R5), &|_| false);
        assert_eq!(
            reqs,
            vec![
                PrefetchRequest::new(Addr::new(0x10_0A00), PrefetchSource::ScaleTracker),
                PrefetchRequest::new(Addr::new(0x10_0600), PrefetchSource::ScaleTracker),
            ]
        );
        assert_eq!(p.stats().st_prefetches, 2);
    }

    #[test]
    fn st_silent_without_scale() {
        let mut p =
            Prefender::builder(64, 4096).access_tracker(false).record_protector(false).build();
        retire_all(&mut p, "li r5, 0x10000\n");
        let reqs = p.on_access(&load_event(0x8000, 0x10000, Reg::R5), &|_| false);
        assert!(reqs.is_empty());
    }

    #[test]
    fn at_learns_probe_stride() {
        let mut p =
            Prefender::builder(64, 4096).scale_tracker(false).record_protector(false).build();
        let mut all = Vec::new();
        for k in [0u64, 3, 1, 5, 2] {
            all.extend(
                p.on_access(&load_event(0x9000, 0x20_0000 + k * 0x200, Reg::R1), &|_| false),
            );
        }
        assert!(!all.is_empty());
        assert!(all.iter().all(|r| r.source == PrefetchSource::AccessTracker));
        assert!(p.stats().at_prefetches > 0);
    }

    #[test]
    fn stores_bypass_prefender_units() {
        let mut p = Prefender::builder(64, 4096).build();
        let mut ev = load_event(0x9000, 0x20_0000, Reg::R1);
        ev.kind = AccessKind::Write;
        for k in 0..6u64 {
            ev.vaddr = Addr::new(0x20_0000 + k * 0x200);
            assert!(p.on_access(&ev, &|_| false).is_empty());
        }
        assert_eq!(p.stats().total(), 0);
    }

    #[test]
    fn rp_links_st_pattern_to_at() {
        // Victim load with scale 0x200 records the pattern; a different
        // load probing the same pattern is guided by RP even though its
        // buffer is far below the DiffMin threshold.
        let mut p = Prefender::builder(64, 4096).build();
        retire_all(&mut p, "ld r1, 0(r0)\nmul r5, r1, 0x200\n");
        let _ = p.on_access(&load_event(0x8000, 0x10_0800, Reg::R5), &|_| false);
        assert!(p.record_protector().unwrap().record_count() > 0);

        // Attacker probe, different PC, on-pattern address.
        let reqs = p.on_access(&load_event(0xA000, 0x10_0C00, Reg::R2), &|_| false);
        let rp_reqs: Vec<_> =
            reqs.iter().filter(|r| r.source == PrefetchSource::RecordProtector).collect();
        assert_eq!(rp_reqs.len(), 1);
        assert!(p.protected_count() >= 1);
        assert!(p.stats().rp_prefetches > 0);
    }

    #[test]
    fn basic_prefetcher_runs_at_lower_priority() {
        use prefender_prefetch::TaggedPrefetcher;
        let mut p =
            Prefender::builder(64, 4096).basic(Box::new(TaggedPrefetcher::new(64, 1))).build();
        retire_all(&mut p, "ld r1, 0(r0)\nmul r5, r1, 0x200\n");
        let reqs = p.on_access(&load_event(0x8000, 0x10_0800, Reg::R5), &|_| false);
        // ST's two requests come first, then RP's guided prefetch (the
        // victim's own load hits the just-recorded pattern), then the
        // basic prefetcher's next-line request last.
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[0].source, PrefetchSource::ScaleTracker);
        assert_eq!(reqs[1].source, PrefetchSource::ScaleTracker);
        assert_eq!(reqs[2].source, PrefetchSource::RecordProtector);
        assert_eq!(reqs[3].source, PrefetchSource::Basic);
        assert_eq!(reqs[3].addr, Addr::new(0x10_0840));
    }

    #[test]
    fn issued_counts_all_units() {
        use prefender_prefetch::TaggedPrefetcher;
        let mut p =
            Prefender::builder(64, 4096).basic(Box::new(TaggedPrefetcher::new(64, 1))).build();
        retire_all(&mut p, "ld r1, 0(r0)\nmul r5, r1, 0x200\n");
        let _ = p.on_access(&load_event(0x8000, 0x10_0800, Reg::R5), &|_| false);
        assert_eq!(p.issued(), p.stats().total() + p.basic().unwrap().issued());
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut p = Prefender::builder(64, 4096).build();
        retire_all(&mut p, "ld r1, 0(r0)\nmul r5, r1, 0x200\n");
        let _ = p.on_access(&load_event(0x8000, 0x10_0800, Reg::R5), &|_| false);
        p.reset();
        assert_eq!(p.stats().total(), 0);
        assert_eq!(p.protected_count(), 0);
        assert!(p.on_access(&load_event(0x8000, 0x10_0800, Reg::R5), &|_| false).is_empty());
    }

    #[test]
    fn builder_unit_toggles() {
        let p = Prefender::builder(64, 4096).scale_tracker(false).record_protector(false).build();
        assert!(p.scale_tracker().is_none());
        assert!(p.access_tracker().is_some());
        assert!(p.record_protector().is_none());
    }

    #[test]
    fn retire_events_update_st_through_trait() {
        let mut p = Prefender::builder(64, 4096).build();
        let i = Instr::LoadImm { rd: Reg::R3, imm: 0x200 };
        p.on_retire(&RetireEvent { core: 0, pc: 0, instr: &i, now: Cycle::ZERO });
        assert_eq!(p.scale_tracker().unwrap().calc().get(Reg::R3).fva, Some(0x200));
    }
}
