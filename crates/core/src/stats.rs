//! PREFENDER prefetch attribution counters.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Counts of prefetches proposed by each PREFENDER unit.
///
/// These counters regenerate the paper's Figure 9 (attack timelines) and
/// Figure 11 (per-benchmark totals). As in the paper, "RP prefetches" are
/// the Access Tracker's prefetches *guided by* the Record Protector's hit
/// scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefenderStats {
    /// Prefetches proposed by the Scale Tracker.
    pub st_prefetches: u64,
    /// Prefetches proposed by the Access Tracker from its own DiffMin.
    pub at_prefetches: u64,
    /// Access Tracker prefetches guided by the Record Protector.
    pub rp_prefetches: u64,
}

impl PrefenderStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of all three units.
    pub fn total(&self) -> u64 {
        self.st_prefetches + self.at_prefetches + self.rp_prefetches
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl Add for PrefenderStats {
    type Output = PrefenderStats;

    fn add(self, rhs: PrefenderStats) -> PrefenderStats {
        PrefenderStats {
            st_prefetches: self.st_prefetches + rhs.st_prefetches,
            at_prefetches: self.at_prefetches + rhs.at_prefetches,
            rp_prefetches: self.rp_prefetches + rhs.rp_prefetches,
        }
    }
}

impl AddAssign for PrefenderStats {
    fn add_assign(&mut self, rhs: PrefenderStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for PrefenderStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ST={} AT={} RP={} (total {})",
            self.st_prefetches,
            self.at_prefetches,
            self.rp_prefetches,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_reset() {
        let mut s = PrefenderStats { st_prefetches: 1, at_prefetches: 2, rp_prefetches: 3 };
        assert_eq!(s.total(), 6);
        s.reset();
        assert_eq!(s, PrefenderStats::new());
    }

    #[test]
    fn addition_fieldwise() {
        let a = PrefenderStats { st_prefetches: 1, at_prefetches: 0, rp_prefetches: 2 };
        let b = PrefenderStats { st_prefetches: 3, at_prefetches: 5, rp_prefetches: 0 };
        let c = a + b;
        assert_eq!(c, PrefenderStats { st_prefetches: 4, at_prefetches: 5, rp_prefetches: 2 });
    }

    #[test]
    fn display_nonempty() {
        assert!(PrefenderStats::new().to_string().contains("total 0"));
    }
}
