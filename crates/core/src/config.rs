//! Configuration of the three PREFENDER units.

/// Scale Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StConfig {
    /// Cacheline size in bytes: a scale must *exceed* this to prefetch
    /// (a sub-line scale lands in the same line — nothing to hide).
    pub line_size: u64,
    /// Page size in bytes: the scale must be *smaller* than this, and
    /// candidates must stay on the accessed page (physical prefetching
    /// cannot cross page boundaries safely).
    pub page_size: u64,
}

impl StConfig {
    /// Paper baseline: 64-byte lines, 4 KB pages.
    pub fn paper() -> Self {
        StConfig { line_size: 64, page_size: 4096 }
    }
}

impl Default for StConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Access Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtConfig {
    /// Number of access buffers (paper sweeps 16/32/64; default 32).
    pub n_buffers: usize,
    /// Entries per buffer (paper: "small (such as 8)").
    pub entries_per_buffer: usize,
    /// Valid entries required before DiffMin is computed and prefetching
    /// starts (paper: "a threshold (such as 4)").
    pub prefetch_threshold: usize,
    /// Cacheline size in bytes (block addresses are line-aligned).
    pub line_size: u64,
}

impl AtConfig {
    /// Paper baseline: 32 buffers × 8 entries, threshold 4.
    pub fn paper() -> Self {
        AtConfig { n_buffers: 32, entries_per_buffer: 8, prefetch_threshold: 4, line_size: 64 }
    }

    /// Paper baseline with a different buffer count (the Tables IV/V sweep).
    pub fn with_buffers(n_buffers: usize) -> Self {
        AtConfig { n_buffers, ..Self::paper() }
    }
}

impl Default for AtConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Record Protector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpConfig {
    /// Scale buffer entries (paper Section V-E: 8).
    pub scale_buffer_entries: usize,
    /// A protected buffer reverts to unprotected after this many
    /// hit-scale-guided prefetches (paper: "a threshold"; not quantified —
    /// default chosen by the ablation in `repro ablate-unprotect`).
    pub unprotect_prefetch_threshold: u32,
    /// ... or after staying untouched for this many cycles.
    pub unprotect_idle_cycles: u64,
}

impl RpConfig {
    /// Baseline: 8 scale-buffer entries, unprotect after 64 guided
    /// prefetches or 100k idle cycles.
    pub fn paper() -> Self {
        RpConfig {
            scale_buffer_entries: 8,
            unprotect_prefetch_threshold: 64,
            unprotect_idle_cycles: 100_000,
        }
    }
}

impl Default for RpConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Full PREFENDER configuration: which units are enabled and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefenderConfig {
    /// Scale Tracker, or `None` to disable.
    pub st: Option<StConfig>,
    /// Access Tracker, or `None` to disable.
    pub at: Option<AtConfig>,
    /// Record Protector, or `None` to disable (requires both ST and AT to
    /// have any effect).
    pub rp: Option<RpConfig>,
}

impl PrefenderConfig {
    /// Everything enabled at paper defaults (the "PREFENDER" rows of the
    /// paper's Table V).
    pub fn full() -> Self {
        PrefenderConfig {
            st: Some(StConfig::paper()),
            at: Some(AtConfig::paper()),
            rp: Some(RpConfig::paper()),
        }
    }

    /// ST+AT without RP (the paper's Table IV configuration).
    pub fn st_at() -> Self {
        PrefenderConfig { st: Some(StConfig::paper()), at: Some(AtConfig::paper()), rp: None }
    }
}

impl Default for PrefenderConfig {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let at = AtConfig::paper();
        assert_eq!(at.n_buffers, 32);
        assert_eq!(at.entries_per_buffer, 8);
        assert_eq!(at.prefetch_threshold, 4);
        let st = StConfig::paper();
        assert_eq!(st.line_size, 64);
        assert_eq!(st.page_size, 4096);
        let rp = RpConfig::paper();
        assert_eq!(rp.scale_buffer_entries, 8);
    }

    #[test]
    fn buffer_sweep_helper() {
        assert_eq!(AtConfig::with_buffers(64).n_buffers, 64);
        assert_eq!(AtConfig::with_buffers(64).entries_per_buffer, 8);
    }

    #[test]
    fn preset_shapes() {
        assert!(PrefenderConfig::full().rp.is_some());
        assert!(PrefenderConfig::st_at().rp.is_none());
        assert_eq!(PrefenderConfig::default(), PrefenderConfig::full());
    }
}
