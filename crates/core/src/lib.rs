//! # prefender-core — the PREFENDER secure prefetcher
//!
//! This crate is the paper's contribution: a prefetcher that defends
//! against access-based cache timing side-channel attacks *by prefetching*,
//! turning the defense itself into a performance feature.
//!
//! Three cooperating units (paper Section IV):
//!
//! * [`ScaleTracker`] — tracks, per architectural register, a pair
//!   `(fva, sc)` — *fixed value* and *scale* — through ALU dataflow using
//!   the rules of the paper's Table III. When a load executes through a
//!   base register whose scale is larger than a cacheline and smaller than
//!   a page, the addresses `addr ± sc` are other *eviction cachelines* the
//!   victim could have touched; prefetching them hides which one the
//!   secret selected (defeats attack phase 2; challenge C1).
//! * [`AccessTracker`] — a file of per-PC *access buffers* recording the
//!   block addresses each load touches. Once a buffer holds enough
//!   entries, the probe stride is estimated as `DiffMin` — the minimum
//!   pairwise difference — and `blk ± DiffMin` is prefetched *before* the
//!   attacker times it (defeats phase 3 even under random probe order;
//!   challenge C2).
//! * [`RecordProtector`] — a *scale buffer* of `(sc, BlkAddr)` patterns
//!   recorded when the Scale Tracker prefetches. Accesses matching a
//!   pattern mark their access buffer *protected*: exempt from LRU
//!   replacement (noisy instructions, challenge C3) and prefetched using
//!   the *hit scale* instead of a possibly-corrupted DiffMin (noisy
//!   accesses, challenge C4).
//!
//! The composed [`Prefender`] implements
//! [`Prefetcher`](prefender_prefetch::Prefetcher) and optionally chains a
//! conventional basic prefetcher at lower priority.
//!
//! ```
//! use prefender_core::Prefender;
//!
//! let p = Prefender::builder(64, 4096)
//!     .scale_tracker(true)
//!     .access_buffers(32)
//!     .record_protector(true)
//!     .build();
//! assert_eq!(p.name(), "prefender");
//! # use prefender_prefetch::Prefetcher;
//! ```

mod access_tracker;
mod calc;
mod config;
mod hw_cost;
mod prefender;
mod record_protector;
mod scale_tracker;
mod stats;

pub use access_tracker::{AccessBuffer, AccessTracker, AtDecision};
pub use calc::{CalculationBuffer, RegTrack};
pub use config::{AtConfig, PrefenderConfig, RpConfig, StConfig};
pub use hw_cost::{hw_cost, HwCost};
pub use prefender::{Prefender, PrefenderBuilder};
pub use record_protector::{RecordProtector, ScaleEntry};
pub use scale_tracker::ScaleTracker;
pub use stats::PrefenderStats;

// Re-exported so downstream crates name the trait without an extra dep.
pub use prefender_prefetch::Prefetcher;
