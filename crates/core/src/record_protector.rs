//! The Record Protector (RP): the scale buffer — paper Section IV-D.

use prefender_sim::Cycle;

use crate::config::RpConfig;

/// One scale-buffer entry: an eviction-cacheline *pattern*
/// `{ BlkAddr + k·sc | k ∈ ℤ }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEntry {
    /// The pattern's stride (a scale recorded from the Scale Tracker).
    pub sc: u64,
    /// A representative block address of the pattern.
    pub blk: u64,
}

impl ScaleEntry {
    /// `true` when `blk` is a member of this pattern. (`sc` divides the
    /// signed difference exactly when it divides its magnitude, so this
    /// is one u64 remainder — no wide signed arithmetic.)
    pub fn matches(&self, blk: u64) -> bool {
        blk.abs_diff(self.blk).is_multiple_of(self.sc)
    }
}

/// The scale buffer linking Scale Tracker and Access Tracker.
///
/// * **Stage 1 — scale recording**: whenever the Scale Tracker prefetches
///   for a victim load, `(sc, BlkAddr)` is recorded. A pattern that is a
///   *subset* of an existing one replaces it when sparser (larger `sc`),
///   and is dropped when denser — reducing redundancy exactly as the
///   paper's Figure 7 step ① describes.
/// * **Stage 2 — protection status updating**: every load access checks
///   its block address against all patterns; a hit returns `(sc, BlkAddr)`
///   so the Access Tracker can protect and guide the associated buffer.
#[derive(Debug, Clone)]
pub struct RecordProtector {
    entries: Vec<Option<(ScaleEntry, u64)>>, // (entry, lru sequence)
    cfg: RpConfig,
    seq: u64,
    records: u64,
    hits: u64,
}

impl RecordProtector {
    /// Creates an empty scale buffer.
    pub fn new(cfg: RpConfig) -> Self {
        RecordProtector {
            entries: vec![None; cfg.scale_buffer_entries],
            cfg,
            seq: 0,
            records: 0,
            hits: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RpConfig {
        &self.cfg
    }

    /// Valid entries, in arbitrary order (inspection).
    pub fn entries(&self) -> Vec<ScaleEntry> {
        self.entries.iter().flatten().map(|&(e, _)| e).collect()
    }

    /// Total stage-1 record operations.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Total stage-2 hits.
    pub fn hit_count(&self) -> u64 {
        self.hits
    }

    /// Stage 1: records the pattern `(sc, blk)` observed when the Scale
    /// Tracker prefetched for a (presumed) victim load.
    pub fn record(&mut self, sc: u64, blk: u64, _now: Cycle) {
        debug_assert!(sc > 0, "a zero scale is never recorded");
        self.records += 1;
        self.seq += 1;
        let seq = self.seq;
        // Redundancy reduction: if the new pattern relates to an existing
        // entry ((blk' - blk_i) % min(sc', sc_i) == 0), keep only the
        // sparser (larger-scale) pattern.
        for (e, lru) in self.entries.iter_mut().flatten() {
            let m = sc.min(e.sc);
            if blk.abs_diff(e.blk) % m == 0 {
                if sc > e.sc {
                    *e = ScaleEntry { sc, blk };
                }
                *lru = seq;
                return;
            }
        }
        // Allocate an empty slot, else replace the LRU entry.
        let slot = match self.entries.iter().position(|s| s.is_none()) {
            Some(i) => i,
            None => self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.map(|(_, lru)| lru).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("scale buffer has at least one entry"),
        };
        self.entries[slot] = Some((ScaleEntry { sc, blk }, seq));
    }

    /// Stage 2: does `blk` hit any recorded pattern? Returns the hit
    /// `(sc, BlkAddr)` for the Access Tracker's protection registers.
    pub fn hit(&mut self, blk: u64) -> Option<(u64, u64)> {
        self.seq += 1;
        let seq = self.seq;
        for (e, lru) in self.entries.iter_mut().flatten() {
            if e.matches(blk) {
                *lru = seq;
                self.hits += 1;
                return Some((e.sc, e.blk));
            }
        }
        None
    }

    /// Clears the scale buffer.
    pub fn reset(&mut self) {
        self.entries.fill(None);
        self.seq = 0;
        self.records = 0;
        self.hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rp(entries: usize) -> RecordProtector {
        RecordProtector::new(RpConfig { scale_buffer_entries: entries, ..RpConfig::paper() })
    }

    #[test]
    fn record_then_hit() {
        let mut r = rp(8);
        r.record(0x200, 0x10_0000, Cycle::ZERO);
        assert_eq!(r.hit(0x10_0400), Some((0x200, 0x10_0000)));
        assert_eq!(r.hit(0x10_0300), None, "off-pattern block must miss");
        assert_eq!(r.hit_count(), 1);
    }

    #[test]
    fn pattern_matches_below_base() {
        let mut r = rp(8);
        r.record(0x200, 0x10_0000, Cycle::ZERO);
        assert!(r.hit(0x0F_FE00).is_some(), "patterns extend in both directions");
    }

    #[test]
    fn figure_7_subset_replacement() {
        // Entry holds (0x100, 0x2000); recording (0x400, 0x1000) — whose
        // pattern is a subset — replaces it with the sparser pattern.
        let mut r = rp(8);
        r.record(0x100, 0x2000, Cycle::ZERO);
        r.record(0x400, 0x1000, Cycle::ZERO);
        assert_eq!(r.entries(), vec![ScaleEntry { sc: 0x400, blk: 0x1000 }]);
    }

    #[test]
    fn denser_pattern_dropped() {
        let mut r = rp(8);
        r.record(0x400, 0x1000, Cycle::ZERO);
        r.record(0x100, 0x2000, Cycle::ZERO); // subset relation, smaller sc
        assert_eq!(r.entries(), vec![ScaleEntry { sc: 0x400, blk: 0x1000 }]);
    }

    #[test]
    fn unrelated_patterns_coexist() {
        let mut r = rp(8);
        r.record(0x200, 0x10_0000, Cycle::ZERO);
        r.record(0x300, 0x20_0040, Cycle::ZERO);
        assert_eq!(r.entries().len(), 2);
    }

    #[test]
    fn lru_replacement_when_full() {
        let mut r = rp(2);
        r.record(0x200, 0x10_0000, Cycle::ZERO); // becomes LRU
        r.record(0x300, 0x20_0040, Cycle::ZERO);
        r.record(0x500, 0x30_0080, Cycle::ZERO); // evicts the 0x200 pattern
        let scs: Vec<u64> = r.entries().iter().map(|e| e.sc).collect();
        assert!(scs.contains(&0x300) && scs.contains(&0x500) && !scs.contains(&0x200));
    }

    #[test]
    fn hit_refreshes_lru() {
        let mut r = rp(2);
        r.record(0x200, 0x10_0000, Cycle::ZERO);
        r.record(0x300, 0x20_0040, Cycle::ZERO);
        r.hit(0x10_0200); // refresh the 0x200 pattern
        r.record(0x500, 0x30_0080, Cycle::ZERO); // now evicts the 0x300 one
        let scs: Vec<u64> = r.entries().iter().map(|e| e.sc).collect();
        assert!(scs.contains(&0x200) && scs.contains(&0x500));
    }

    #[test]
    fn reset_clears() {
        let mut r = rp(4);
        r.record(0x200, 0x1000, Cycle::ZERO);
        r.reset();
        assert!(r.entries().is_empty());
        assert_eq!(r.record_count(), 0);
    }
}
