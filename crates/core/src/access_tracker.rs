//! The Access Tracker (AT): phase-3 defense — paper Section IV-C.

use prefender_obs::{trace_event, TraceEvent};
use prefender_sim::{Addr, Cycle, PrefetchSource};

use crate::config::{AtConfig, RpConfig};

/// The PC → buffer index map: keyed by 64-bit instruction addresses and
/// never iterated, so the shared SplitMix64-finalizer hasher applies
/// (see [`prefender_sim::Mix64Map`]) — stage 1's associative match
/// becomes one cheap hash probe.
type PcMap = prefender_sim::Mix64Map<usize>;

/// One access buffer: the recorded behaviour of a single load instruction.
#[derive(Debug, Clone)]
pub struct AccessBuffer {
    valid: bool,
    inst_addr: u64,
    /// `(block address, entry-LRU sequence)`.
    entries: Vec<(u64, u64)>,
    diffmin: Option<u64>,
    /// Number of unordered entry pairs achieving `diffmin` — the
    /// incremental-maintenance bookkeeping: an eviction only forces the
    /// O(n²) rescan when it removes the *last* minimum pair.
    diffmin_pairs: u32,
    protected: bool,
    protected_scale: Option<(u64, u64)>,
    guided_prefetches: u32,
    last_active: Cycle,
    touch_seq: u64,
}

impl AccessBuffer {
    fn empty(capacity: usize) -> Self {
        AccessBuffer {
            valid: false,
            inst_addr: 0,
            entries: Vec::with_capacity(capacity),
            diffmin: None,
            diffmin_pairs: 0,
            protected: false,
            protected_scale: None,
            guided_prefetches: 0,
            last_active: Cycle::ZERO,
            touch_seq: 0,
        }
    }

    fn reset_for(&mut self, pc: u64) {
        self.valid = true;
        self.inst_addr = pc;
        self.entries.clear();
        self.diffmin = None;
        self.diffmin_pairs = 0;
        self.protected = false;
        self.protected_scale = None;
        self.guided_prefetches = 0;
    }

    /// `true` when the buffer is associated with a load.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// The associated load's instruction address.
    pub fn inst_addr(&self) -> u64 {
        self.inst_addr
    }

    /// Recorded block addresses, in data-structure order (not LRU order)
    /// — a borrowed view over the entry slice, no allocation.
    pub fn blocks(&self) -> impl ExactSizeIterator<Item = u64> + '_ {
        self.entries.iter().map(|&(b, _)| b)
    }

    /// The current minimum pairwise difference, if computed.
    pub fn diffmin(&self) -> Option<u64> {
        self.diffmin
    }

    /// `true` when the Record Protector has protected this buffer.
    pub fn is_protected(&self) -> bool {
        self.protected
    }

    /// The protected scale registers `(sc, BlkAddr)`, when protected.
    pub fn protected_scale(&self) -> Option<(u64, u64)> {
        self.protected_scale
    }

    fn contains(&self, blk: u64) -> bool {
        self.entries.iter().any(|&(b, _)| b == blk)
    }

    /// DiffMin update for an entry about to be inserted: one O(n) pass
    /// against the existing (distinct) blocks. Call **before** pushing
    /// `blk` so the pass never pairs the block with itself.
    fn diffmin_on_insert(&mut self, blk: u64) {
        let mut min: Option<u64> = None;
        let mut pairs = 0u32;
        for &(b, _) in &self.entries {
            let d = b.abs_diff(blk);
            debug_assert!(d != 0, "entries hold distinct blocks");
            match min {
                Some(m) if d > m => {}
                Some(m) if d == m => pairs += 1,
                _ => {
                    min = Some(d);
                    pairs = 1;
                }
            }
        }
        match (self.diffmin, min) {
            (Some(cur), Some(new)) if new < cur => {
                self.diffmin = Some(new);
                self.diffmin_pairs = pairs;
            }
            (Some(cur), Some(new)) if new == cur => self.diffmin_pairs += pairs,
            (None, Some(new)) => {
                self.diffmin = Some(new);
                self.diffmin_pairs = pairs;
            }
            _ => {}
        }
    }

    /// DiffMin update for an entry just evicted: drop the minimum pairs
    /// the victim participated in; only when it carried the *last* ones
    /// does the full O(n²) rescan run. Returns `true` when the rescan
    /// fired (the tracker counts incremental-vs-rescan updates).
    fn diffmin_on_evict(&mut self, victim_blk: u64) -> bool {
        let Some(cur) = self.diffmin else { return false };
        let lost =
            self.entries.iter().filter(|&&(b, _)| b.abs_diff(victim_blk) == cur).count() as u32;
        if lost < self.diffmin_pairs {
            self.diffmin_pairs -= lost;
            false
        } else {
            self.recompute_diffmin();
            true
        }
    }

    /// The full O(n²) rescan: sets both `diffmin` and the pair count.
    /// The incremental insert/evict hooks above must agree with this
    /// exactly (pinned by `diffmin_incremental_matches_rescan` and the
    /// root-level `diffmin_is_brute_force_minimum` proptest).
    fn recompute_diffmin(&mut self) {
        let mut min: Option<u64> = None;
        let mut pairs = 0u32;
        for i in 0..self.entries.len() {
            for j in (i + 1)..self.entries.len() {
                let d = self.entries[i].0.abs_diff(self.entries[j].0);
                if d == 0 {
                    continue;
                }
                match min {
                    Some(m) if d > m => {}
                    Some(m) if d == m => pairs += 1,
                    _ => {
                        min = Some(d);
                        pairs = 1;
                    }
                }
            }
        }
        self.diffmin = min;
        self.diffmin_pairs = pairs;
    }
}

/// What one Access Tracker activation decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtDecision {
    /// At most one prefetch (the paper prefetches one line per load
    /// execution to bound pollution and hardware cost).
    pub prefetch: Option<(Addr, PrefetchSource)>,
    /// The activated buffer's index, when one was available.
    pub buffer: Option<usize>,
}

impl AtDecision {
    const NONE: AtDecision = AtDecision { prefetch: None, buffer: None };
}

/// The file of access buffers (paper Figure 6) plus the Record Protector's
/// per-buffer protection state (paper Figure 7).
///
/// Flow per load access (paper's four stages):
/// 1. **Buffer allocation** — associative match on the load's PC; else an
///    empty buffer; else LRU *over unprotected buffers only*.
/// 2. **Entry updating** — record the block address (entry-level LRU).
/// 3. **DiffMin updating** — minimum pairwise difference of recorded
///    blocks, used once the buffer holds `prefetch_threshold` entries.
/// 4. **Data prefetching** — `blk ± DiffMin`, first candidate that is in
///    neither the buffer nor the L1D. When the access hits the scale
///    buffer or the buffer's protected scale, the *hit scale* guides the
///    prefetch instead (Record Protector stage 3).
#[derive(Debug, Clone)]
pub struct AccessTracker {
    buffers: Vec<AccessBuffer>,
    /// PC → buffer index for every valid buffer (stage 1's associative
    /// match as one hash probe instead of a scan over all buffers).
    pc_index: PcMap,
    /// Buffers associated so far. Buffers only become valid (never
    /// invalid, short of [`AccessTracker::reset`]) and are handed out in
    /// slot order, so this doubles as the next free slot.
    n_valid: usize,
    /// Currently protected buffers, maintained on every protect /
    /// unprotect transition so the per-load expiry walk can skip when
    /// nothing is protected (the common case without an active RP).
    n_protected: usize,
    cfg: AtConfig,
    unprotect_prefetch_threshold: u32,
    unprotect_idle_cycles: u64,
    seq: u64,
    /// Observability (always-on plain counters): buffer (re)associations
    /// and how many of them stole a live buffer.
    allocs: u64,
    buffer_evictions: u64,
    /// DiffMin updates split by path: the incremental O(n) pass vs. the
    /// full O(n²) rescan an eviction can force.
    diffmin_incremental: u64,
    diffmin_rescans: u64,
    /// Record Protector protection lifecycle events.
    protections_granted: u64,
    protections_expired: u64,
}

impl AccessTracker {
    /// Creates an empty tracker.
    pub fn new(cfg: AtConfig) -> Self {
        AccessTracker {
            buffers: (0..cfg.n_buffers)
                .map(|_| AccessBuffer::empty(cfg.entries_per_buffer))
                .collect(),
            pc_index: PcMap::default(),
            n_valid: 0,
            n_protected: 0,
            cfg,
            unprotect_prefetch_threshold: u32::MAX,
            unprotect_idle_cycles: u64::MAX,
            seq: 0,
            allocs: 0,
            buffer_evictions: 0,
            diffmin_incremental: 0,
            diffmin_rescans: 0,
            protections_granted: 0,
            protections_expired: 0,
        }
    }

    /// Adopts the Record Protector's unprotect thresholds.
    pub fn set_protection_params(&mut self, rp: &RpConfig) {
        self.unprotect_prefetch_threshold = rp.unprotect_prefetch_threshold;
        self.unprotect_idle_cycles = rp.unprotect_idle_cycles;
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &AtConfig {
        &self.cfg
    }

    /// A buffer, for inspection.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= n_buffers`.
    pub fn buffer(&self, idx: usize) -> &AccessBuffer {
        &self.buffers[idx]
    }

    /// Number of currently protected buffers (paper Figure 12's quantity).
    pub fn protected_count(&self) -> usize {
        debug_assert_eq!(
            self.n_protected,
            self.buffers.iter().filter(|b| b.valid && b.protected).count()
        );
        self.n_protected
    }

    /// Number of valid (associated) buffers.
    pub fn valid_count(&self) -> usize {
        debug_assert_eq!(self.n_valid, self.buffers.iter().filter(|b| b.valid).count());
        self.n_valid
    }

    /// Observability: `(allocations, evictions)` — buffer associations
    /// since construction or [`reset`](AccessTracker::reset), and how many
    /// of those stole a live (valid) buffer.
    pub fn alloc_counts(&self) -> (u64, u64) {
        (self.allocs, self.buffer_evictions)
    }

    /// Observability: `(incremental, rescans)` — DiffMin updates that took
    /// the incremental O(n) path vs. the full O(n²) rescan.
    pub fn diffmin_update_counts(&self) -> (u64, u64) {
        (self.diffmin_incremental, self.diffmin_rescans)
    }

    /// Observability: `(granted, expired)` — Record Protector protection
    /// transitions (expiry counts both guided-prefetch and idle unprotects).
    pub fn protection_event_counts(&self) -> (u64, u64) {
        (self.protections_granted, self.protections_expired)
    }

    /// Clears all buffers.
    pub fn reset(&mut self) {
        let cap = self.cfg.entries_per_buffer;
        for b in &mut self.buffers {
            *b = AccessBuffer::empty(cap);
        }
        self.pc_index.clear();
        self.n_valid = 0;
        self.n_protected = 0;
        self.seq = 0;
        self.allocs = 0;
        self.buffer_evictions = 0;
        self.diffmin_incremental = 0;
        self.diffmin_rescans = 0;
        self.protections_granted = 0;
        self.protections_expired = 0;
    }

    /// Processes one load access.
    ///
    /// * `pc` — the load instruction's address;
    /// * `blk` — the accessed *block* (line-aligned) address;
    /// * `rp_hit` — `(sc, BlkAddr)` when the Record Protector's scale
    ///   buffer matched this access (stage 2), else `None`;
    /// * `resident` — the "already in the L1D" probe.
    pub fn on_load(
        &mut self,
        pc: u64,
        blk: Addr,
        now: Cycle,
        rp_hit: Option<(u64, u64)>,
        resident: &dyn Fn(Addr) -> bool,
    ) -> AtDecision {
        self.expire_protection(now);

        // Stage 1: buffer allocation — one hash probe on the PC map; on
        // a miss, the next never-associated slot (buffers fill in slot
        // order and only a full reset invalidates them), else LRU.
        let idx = match self.pc_index.get(&pc).copied() {
            Some(i) => i,
            None => {
                let slot = if self.n_valid < self.buffers.len() {
                    self.n_valid += 1;
                    Some(self.n_valid - 1)
                } else {
                    // LRU over unprotected buffers only (RP stage 2's rule;
                    // without RP every buffer is unprotected).
                    self.buffers
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| !b.protected)
                        .min_by_key(|(_, b)| b.touch_seq)
                        .map(|(i, _)| i)
                };
                match slot {
                    Some(i) => {
                        self.associate(i, pc, now);
                        i
                    }
                    None => return AtDecision::NONE,
                }
            }
        };

        self.seq += 1;
        let seq = self.seq;
        let threshold = self.cfg.prefetch_threshold;
        let blk_raw = blk.raw();
        let unprotect_after = self.unprotect_prefetch_threshold;
        let b = &mut self.buffers[idx];
        b.touch_seq = seq;
        b.last_active = now;

        // Record Protector stage 2: protection status updating.
        if let Some((sc, pat_blk)) = rp_hit {
            if !b.protected {
                b.guided_prefetches = 0;
                self.n_protected += 1;
                self.protections_granted += 1;
                trace_event(|| TraceEvent::RpGrant { at: u64::from(now), pc });
            }
            b.protected = true;
            b.protected_scale = Some((sc, pat_blk));
        }

        // Stage 2: entry updating, with Stage 3 (DiffMin) maintained
        // incrementally — O(n) against the existing entries on insert,
        // the full pairwise rescan only when an eviction removes the
        // last minimum pair.
        if let Some(e) = b.entries.iter_mut().find(|(addr, _)| *addr == blk_raw) {
            e.1 = seq;
        } else {
            if b.entries.len() >= self.cfg.entries_per_buffer {
                let victim = b
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, touch))| *touch)
                    .map(|(i, _)| i)
                    .expect("buffer is full, hence nonempty");
                let (victim_blk, _) = b.entries.swap_remove(victim);
                if b.diffmin_on_evict(victim_blk) {
                    self.diffmin_rescans += 1;
                } else {
                    self.diffmin_incremental += 1;
                }
            }
            b.diffmin_on_insert(blk_raw);
            self.diffmin_incremental += 1;
            b.entries.push((blk_raw, seq));
        }

        // Record Protector stage 3 / AT stage 4: prefetching.
        let guided_scale = if let Some((sc, _)) = rp_hit {
            Some(sc)
        } else if b.protected {
            b.protected_scale.and_then(|(sc, pat_blk)| {
                blk_raw.abs_diff(pat_blk).is_multiple_of(sc).then_some(sc)
            })
        } else {
            None
        };

        let stride = if let Some(sc) = guided_scale {
            Some((sc, PrefetchSource::RecordProtector))
        } else if b.entries.len() >= threshold {
            b.diffmin.map(|d| (d, PrefetchSource::AccessTracker))
        } else {
            None
        };

        let mut prefetch = None;
        if let Some((stride, source)) = stride {
            for delta in [stride as i64, -(stride as i64)] {
                if let Some(cand) = blk.offset(delta) {
                    if !b.contains(cand.raw()) && !resident(cand) {
                        prefetch = Some((cand, source));
                        break;
                    }
                }
            }
            if prefetch.is_some() && source == PrefetchSource::RecordProtector {
                b.guided_prefetches += 1;
                if b.guided_prefetches > unprotect_after {
                    b.protected = false;
                    b.protected_scale = None;
                    b.guided_prefetches = 0;
                    self.n_protected -= 1;
                    self.protections_expired += 1;
                    trace_event(|| TraceEvent::RpExpire { at: u64::from(now), pc });
                }
            }
        }

        AtDecision { prefetch, buffer: Some(idx) }
    }

    /// Associates buffer `i` with `pc`: drops the old PC mapping (LRU
    /// victims stay indexed until they are stolen), clears the buffer and
    /// indexes the new PC. Only unprotected buffers are ever handed in
    /// (fresh slots and LRU victims alike), so the protected count is
    /// untouched.
    fn associate(&mut self, i: usize, pc: u64, now: Cycle) {
        self.allocs += 1;
        let b = &mut self.buffers[i];
        debug_assert!(!b.protected, "protected buffers are exempt from replacement");
        if b.valid {
            self.buffer_evictions += 1;
            let old_pc = b.inst_addr;
            trace_event(|| TraceEvent::AtEvict {
                at: u64::from(now),
                pc: old_pc,
                buffer: i as u32,
            });
            let removed = self.pc_index.remove(&old_pc);
            debug_assert_eq!(removed, Some(i));
        }
        trace_event(|| TraceEvent::AtAlloc { at: u64::from(now), pc, buffer: i as u32 });
        b.reset_for(pc);
        self.pc_index.insert(pc, i);
    }

    fn expire_protection(&mut self, now: Cycle) {
        if self.n_protected == 0 {
            return;
        }
        // The early return above keeps idle loads span-free: the walk (and
        // hence the span) only opens while protections are actually live.
        let _span = prefender_obs::span("expiry");
        // Stop as soon as every protected buffer has been visited — with
        // one or two protections live (the common attack shape) the walk
        // ends after a handful of slots instead of the whole file.
        let idle = self.unprotect_idle_cycles;
        let mut remaining = self.n_protected;
        for b in &mut self.buffers {
            if b.protected {
                if now.since(b.last_active) > idle {
                    b.protected = false;
                    b.protected_scale = None;
                    b.guided_prefetches = 0;
                    self.n_protected -= 1;
                    self.protections_expired += 1;
                    let pc = b.inst_addr;
                    trace_event(|| TraceEvent::RpExpire { at: u64::from(now), pc });
                }
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(n_buffers: usize) -> AccessTracker {
        AccessTracker::new(AtConfig { n_buffers, ..AtConfig::paper() })
    }

    const NOT_RESIDENT: fn(Addr) -> bool = |_| false;

    fn probe(t: &mut AccessTracker, pc: u64, blk: u64, at_cycle: u64) -> AtDecision {
        t.on_load(pc, Addr::new(blk), Cycle::new(at_cycle), None, &NOT_RESIDENT)
    }

    #[test]
    fn buffer_associates_by_pc() {
        let mut t = at(4);
        let d1 = probe(&mut t, 0x8008, 0x1000, 0);
        let d2 = probe(&mut t, 0x8008, 0x1600, 1);
        assert_eq!(d1.buffer, d2.buffer);
        let d3 = probe(&mut t, 0x8018, 0x2000, 2);
        assert_ne!(d1.buffer, d3.buffer);
        assert_eq!(t.valid_count(), 2);
    }

    #[test]
    fn figure_6_example() {
        // Buffer[0] is associated with load 0x8008 and holds 0x1000,
        // 0x1F00, 0x1600, 0x2800 (256-byte lines in the figure; we use the
        // raw blocks directly). Access to 0x1C00 updates DiffMin to 0x300
        // = |0x1F00 - 0x1C00| and prefetches 0x1C00 - 0x300 because
        // 0x1C00 + 0x300 = 0x1F00 is already in the buffer.
        let mut t = at(4);
        for (i, blk) in [0x1000u64, 0x1F00, 0x1600, 0x2800].into_iter().enumerate() {
            probe(&mut t, 0x8008, blk, i as u64);
        }
        let d = probe(&mut t, 0x8008, 0x1C00, 4);
        let buf = t.buffer(d.buffer.unwrap());
        assert_eq!(buf.diffmin(), Some(0x300));
        assert_eq!(d.prefetch, Some((Addr::new(0x1900), PrefetchSource::AccessTracker)));
    }

    #[test]
    fn no_prefetch_below_threshold() {
        let mut t = at(4);
        assert_eq!(probe(&mut t, 0x8008, 0x1000, 0).prefetch, None);
        assert_eq!(probe(&mut t, 0x8008, 0x1200, 1).prefetch, None);
        assert_eq!(probe(&mut t, 0x8008, 0x1400, 2).prefetch, None);
        // 4th distinct entry reaches the threshold.
        let d = probe(&mut t, 0x8008, 0x1600, 3);
        assert_eq!(d.prefetch, Some((Addr::new(0x1800), PrefetchSource::AccessTracker)));
    }

    #[test]
    fn random_probe_order_still_learns_stride() {
        // Challenge C2: eviction lines at 0x200 steps probed in random
        // order; DiffMin converges to 0x200.
        let mut t = at(4);
        let order = [7u64, 2, 11, 5, 3, 9, 1, 8];
        let mut decisions = Vec::new();
        for (i, k) in order.into_iter().enumerate() {
            decisions.push(probe(&mut t, 0x8008, 0x10_0000 + k * 0x200, i as u64));
        }
        let buf = t.buffer(decisions.last().unwrap().buffer.unwrap());
        assert_eq!(buf.diffmin(), Some(0x200));
        // Some probes have both neighbours already recorded (no prefetch),
        // but the randomized walk as a whole must prefetch eviction lines.
        let prefetched: Vec<_> = decisions.iter().filter_map(|d| d.prefetch).collect();
        assert!(!prefetched.is_empty());
        for (addr, _) in prefetched {
            assert_eq!((addr.raw() - 0x10_0000) % 0x200, 0, "on-pattern prefetch");
        }
    }

    #[test]
    fn repeated_block_touches_do_not_duplicate() {
        let mut t = at(4);
        probe(&mut t, 0x8008, 0x1000, 0);
        probe(&mut t, 0x8008, 0x1000, 1);
        let d = probe(&mut t, 0x8008, 0x1000, 2);
        assert!(t.buffer(d.buffer.unwrap()).blocks().eq([0x1000]));
    }

    #[test]
    fn entry_lru_eviction_when_full() {
        let mut t = at(1);
        // 8 entries fill; the 9th evicts the LRU (0x1000).
        for (i, k) in (0..9u64).enumerate() {
            probe(&mut t, 0x8008, 0x1000 + k * 0x100, i as u64);
        }
        let blocks = t.buffer(0).blocks();
        assert_eq!(blocks.len(), 8);
        assert!(!t.buffer(0).blocks().any(|b| b == 0x1000));
        assert!(t.buffer(0).blocks().any(|b| b == 0x1800));
    }

    #[test]
    fn buffer_lru_replacement_when_all_valid() {
        let mut t = at(2);
        probe(&mut t, 0x8000, 0x1000, 0);
        probe(&mut t, 0x8010, 0x2000, 1);
        probe(&mut t, 0x8000, 0x1100, 2); // touch 0x8000's buffer
                                          // A third PC steals the LRU buffer (0x8010's).
        probe(&mut t, 0x8020, 0x3000, 3);
        let pcs: Vec<u64> = (0..2).map(|i| t.buffer(i).inst_addr()).collect();
        assert!(pcs.contains(&0x8000) && pcs.contains(&0x8020));
    }

    #[test]
    fn protected_buffers_survive_lru_thrash() {
        // Challenge C3: noise PCs must not evict a protected buffer.
        let mut t = at(2);
        t.set_protection_params(&RpConfig::paper());
        // Attacker's load, protected via an rp hit.
        t.on_load(0x8008, Addr::new(0x1000), Cycle::new(0), Some((0x200, 0x1000)), &NOT_RESIDENT);
        assert_eq!(t.protected_count(), 1);
        // Noise: many distinct PCs.
        for (i, pc) in (0..8u64).map(|k| 0x9000 + k * 8).enumerate() {
            probe(&mut t, pc, 0x5000 + i as u64 * 0x40, 10 + i as u64);
        }
        // The protected buffer still belongs to 0x8008.
        assert!((0..2).any(|i| t.buffer(i).inst_addr() == 0x8008 && t.buffer(i).is_protected()));
    }

    #[test]
    fn all_buffers_protected_yields_no_decision() {
        let mut t = at(1);
        t.set_protection_params(&RpConfig::paper());
        t.on_load(0x8008, Addr::new(0x1000), Cycle::new(0), Some((0x200, 0x1000)), &NOT_RESIDENT);
        let d = probe(&mut t, 0x9000, 0x2000, 1);
        assert_eq!(d, AtDecision::NONE);
    }

    #[test]
    fn rp_hit_guides_prefetch_over_diffmin() {
        // Challenge C4: DiffMin corrupted to 0x100 by a noisy access, but
        // the hit scale 0x200 guides the prefetch.
        let mut t = at(4);
        t.set_protection_params(&RpConfig::paper());
        for (i, blk) in [0x8000u64, 0x8200, 0x8400, 0x8600].into_iter().enumerate() {
            t.on_load(
                0x8008,
                Addr::new(blk),
                Cycle::new(i as u64),
                Some((0x200, 0x8000)),
                &NOT_RESIDENT,
            );
        }
        // Noisy access to a non-eviction line corrupts DiffMin (no rp hit).
        let d = probe(&mut t, 0x8008, 0x8100, 4);
        let buf = t.buffer(d.buffer.unwrap());
        assert_eq!(buf.diffmin(), Some(0x100), "DiffMin was corrupted by the noise");
        // Next eviction-line access hits the protected scale and is guided
        // by 0x200, not 0x100.
        let d = t.on_load(
            0x8008,
            Addr::new(0x8800),
            Cycle::new(5),
            Some((0x200, 0x8000)),
            &NOT_RESIDENT,
        );
        assert_eq!(d.prefetch, Some((Addr::new(0x8A00), PrefetchSource::RecordProtector)));
    }

    #[test]
    fn protected_scale_applies_after_scale_buffer_eviction() {
        // Figure 7(b): the scale-buffer entry is gone (rp_hit = None) but
        // the buffer's own protected-scale registers still match.
        let mut t = at(4);
        t.set_protection_params(&RpConfig::paper());
        t.on_load(0x8008, Addr::new(0x2400), Cycle::new(0), Some((0x400, 0x1000)), &NOT_RESIDENT);
        let d = probe(&mut t, 0x8008, 0x2C00, 1); // (0x2C00-0x1000) % 0x400 == 0
        assert_eq!(d.prefetch, Some((Addr::new(0x3000), PrefetchSource::RecordProtector)));
    }

    #[test]
    fn guided_prefetch_count_unprotects() {
        let mut t = at(4);
        t.set_protection_params(&RpConfig { unprotect_prefetch_threshold: 2, ..RpConfig::paper() });
        t.on_load(0x8008, Addr::new(0x1000), Cycle::new(0), Some((0x200, 0x1000)), &NOT_RESIDENT);
        // Each access prefetches via the protected scale; after exceeding
        // the threshold the buffer unprotects.
        for k in 1..=3u64 {
            probe(&mut t, 0x8008, 0x1000 + k * 0x200, k);
        }
        assert_eq!(t.protected_count(), 0);
    }

    #[test]
    fn idle_timeout_unprotects() {
        let mut t = at(4);
        t.set_protection_params(&RpConfig { unprotect_idle_cycles: 100, ..RpConfig::paper() });
        t.on_load(0x8008, Addr::new(0x1000), Cycle::new(0), Some((0x200, 0x1000)), &NOT_RESIDENT);
        assert_eq!(t.protected_count(), 1);
        probe(&mut t, 0x9000, 0x2000, 500); // any access after the idle window
        assert_eq!(t.protected_count(), 0);
    }

    #[test]
    fn resident_candidate_skipped() {
        let mut t = at(4);
        for (i, blk) in [0x1000u64, 0x1200, 0x1400, 0x1600].into_iter().enumerate() {
            t.on_load(0x8008, Addr::new(blk), Cycle::new(i as u64), None, &NOT_RESIDENT);
        }
        // +diffmin (0x1A00) is resident; -diffmin (0x1600) is in the
        // buffer: no prefetch at all.
        let d = t.on_load(0x8008, Addr::new(0x1800), Cycle::new(4), None, &|a| a.raw() == 0x1A00);
        assert_eq!(d.prefetch, None);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = at(2);
        probe(&mut t, 0x8008, 0x1000, 0);
        t.reset();
        assert_eq!(t.valid_count(), 0);
        assert_eq!(t.protected_count(), 0);
        // A buffer re-associates cleanly after the reset (the PC index
        // and free-slot counter restart together).
        let d = probe(&mut t, 0x8008, 0x2000, 1);
        assert_eq!(d.buffer, Some(0));
        assert!(t.buffer(0).blocks().eq([0x2000]));
    }

    #[test]
    fn obs_counters_track_lifecycle_events() {
        let mut t = at(2);
        t.set_protection_params(&RpConfig { unprotect_idle_cycles: 100, ..RpConfig::paper() });
        assert_eq!(t.alloc_counts(), (0, 0));

        // Two fresh associations, then a third PC steals the LRU buffer.
        probe(&mut t, 0x8000, 0x1000, 0);
        probe(&mut t, 0x8010, 0x2000, 1);
        assert_eq!(t.alloc_counts(), (2, 0));
        probe(&mut t, 0x8020, 0x3000, 2);
        assert_eq!(t.alloc_counts(), (3, 1));

        // Each distinct-block insert is one incremental DiffMin pass; no
        // buffer overflowed, so no rescans yet.
        let (incr, rescans) = t.diffmin_update_counts();
        assert_eq!((incr, rescans), (3, 0));

        // Protection grant via an rp hit, then idle expiry.
        t.on_load(0x8020, Addr::new(0x3200), Cycle::new(3), Some((0x200, 0x3000)), &NOT_RESIDENT);
        assert_eq!(t.protection_event_counts(), (1, 0));
        probe(&mut t, 0x8000, 0x1100, 500);
        assert_eq!(t.protection_event_counts(), (1, 1));

        t.reset();
        assert_eq!(t.alloc_counts(), (0, 0));
        assert_eq!(t.diffmin_update_counts(), (0, 0));
        assert_eq!(t.protection_event_counts(), (0, 0));
    }

    #[test]
    fn obs_counts_rescans_when_min_pair_evicted() {
        // One 8-entry buffer; 9 distinct blocks with the unique minimum
        // pair at the LRU end, so the 9th insert's eviction removes the
        // last minimum pair and forces the rescan.
        let mut t = at(1);
        let blocks = [0x1000u64, 0x1040, 0x2000, 0x3000, 0x4000, 0x5000, 0x6000, 0x7000, 0x8000];
        for (i, blk) in blocks.into_iter().enumerate() {
            probe(&mut t, 0x8008, blk, i as u64);
        }
        let (_, rescans) = t.diffmin_update_counts();
        assert!(rescans >= 1, "evicting the sole min-pair member must rescan");
    }

    /// Brute-force DiffMin over a slice of blocks (the pre-incremental
    /// O(n²) rescan, reimplemented independently).
    fn rescan_diffmin(blocks: &[u64]) -> Option<u64> {
        let mut min = None;
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                let d = blocks[i].abs_diff(blocks[j]);
                if d != 0 {
                    min = Some(min.map_or(d, |m: u64| m.min(d)));
                }
            }
        }
        min
    }

    #[test]
    fn diffmin_incremental_matches_rescan() {
        // Random insert/evict sequences through a single 8-entry buffer:
        // after every load the incrementally maintained DiffMin must
        // equal the full pairwise rescan over the recorded blocks. Block
        // values repeat often (duplicate touches) and cluster (ties for
        // the minimum), and sequences run far past capacity so LRU
        // evictions — including evictions of min-pair participants —
        // happen continuously.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut rng = move || {
            // SplitMix64: deterministic, no external dependency.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for round in 0..64 {
            let mut t = at(1);
            // Narrow alphabets force duplicates and ties; wide ones
            // exercise the generic path.
            let span = [5, 9, 17, 64][round % 4];
            for k in 0..200u64 {
                let blk = 0x10_0000 + (rng() % span) * 0x40;
                let d = probe(&mut t, 0x8008, blk, k);
                let buf = t.buffer(d.buffer.unwrap());
                assert_eq!(
                    buf.diffmin(),
                    rescan_diffmin(&buf.blocks().collect::<Vec<u64>>()),
                    "round {round}, step {k}: incremental DiffMin diverged from the rescan"
                );
            }
        }
    }
}
