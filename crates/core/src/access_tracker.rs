//! The Access Tracker (AT): phase-3 defense — paper Section IV-C.

use prefender_sim::{Addr, Cycle, PrefetchSource};

use crate::config::{AtConfig, RpConfig};

/// One access buffer: the recorded behaviour of a single load instruction.
#[derive(Debug, Clone)]
pub struct AccessBuffer {
    valid: bool,
    inst_addr: u64,
    /// `(block address, entry-LRU sequence)`.
    entries: Vec<(u64, u64)>,
    diffmin: Option<u64>,
    protected: bool,
    protected_scale: Option<(u64, u64)>,
    guided_prefetches: u32,
    last_active: Cycle,
    touch_seq: u64,
}

impl AccessBuffer {
    fn empty(capacity: usize) -> Self {
        AccessBuffer {
            valid: false,
            inst_addr: 0,
            entries: Vec::with_capacity(capacity),
            diffmin: None,
            protected: false,
            protected_scale: None,
            guided_prefetches: 0,
            last_active: Cycle::ZERO,
            touch_seq: 0,
        }
    }

    fn reset_for(&mut self, pc: u64) {
        self.valid = true;
        self.inst_addr = pc;
        self.entries.clear();
        self.diffmin = None;
        self.protected = false;
        self.protected_scale = None;
        self.guided_prefetches = 0;
    }

    /// `true` when the buffer is associated with a load.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// The associated load's instruction address.
    pub fn inst_addr(&self) -> u64 {
        self.inst_addr
    }

    /// Recorded block addresses, most data-structure order (not LRU order).
    pub fn blocks(&self) -> Vec<u64> {
        self.entries.iter().map(|&(b, _)| b).collect()
    }

    /// The current minimum pairwise difference, if computed.
    pub fn diffmin(&self) -> Option<u64> {
        self.diffmin
    }

    /// `true` when the Record Protector has protected this buffer.
    pub fn is_protected(&self) -> bool {
        self.protected
    }

    /// The protected scale registers `(sc, BlkAddr)`, when protected.
    pub fn protected_scale(&self) -> Option<(u64, u64)> {
        self.protected_scale
    }

    fn contains(&self, blk: u64) -> bool {
        self.entries.iter().any(|&(b, _)| b == blk)
    }

    fn recompute_diffmin(&mut self) {
        let mut min: Option<u64> = None;
        for i in 0..self.entries.len() {
            for j in (i + 1)..self.entries.len() {
                let d = self.entries[i].0.abs_diff(self.entries[j].0);
                if d != 0 {
                    min = Some(min.map_or(d, |m| m.min(d)));
                }
            }
        }
        self.diffmin = min;
    }
}

/// What one Access Tracker activation decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtDecision {
    /// At most one prefetch (the paper prefetches one line per load
    /// execution to bound pollution and hardware cost).
    pub prefetch: Option<(Addr, PrefetchSource)>,
    /// The activated buffer's index, when one was available.
    pub buffer: Option<usize>,
}

impl AtDecision {
    const NONE: AtDecision = AtDecision { prefetch: None, buffer: None };
}

/// The file of access buffers (paper Figure 6) plus the Record Protector's
/// per-buffer protection state (paper Figure 7).
///
/// Flow per load access (paper's four stages):
/// 1. **Buffer allocation** — associative match on the load's PC; else an
///    empty buffer; else LRU *over unprotected buffers only*.
/// 2. **Entry updating** — record the block address (entry-level LRU).
/// 3. **DiffMin updating** — minimum pairwise difference of recorded
///    blocks, used once the buffer holds `prefetch_threshold` entries.
/// 4. **Data prefetching** — `blk ± DiffMin`, first candidate that is in
///    neither the buffer nor the L1D. When the access hits the scale
///    buffer or the buffer's protected scale, the *hit scale* guides the
///    prefetch instead (Record Protector stage 3).
#[derive(Debug, Clone)]
pub struct AccessTracker {
    buffers: Vec<AccessBuffer>,
    cfg: AtConfig,
    unprotect_prefetch_threshold: u32,
    unprotect_idle_cycles: u64,
    seq: u64,
}

impl AccessTracker {
    /// Creates an empty tracker.
    pub fn new(cfg: AtConfig) -> Self {
        AccessTracker {
            buffers: (0..cfg.n_buffers)
                .map(|_| AccessBuffer::empty(cfg.entries_per_buffer))
                .collect(),
            cfg,
            unprotect_prefetch_threshold: u32::MAX,
            unprotect_idle_cycles: u64::MAX,
            seq: 0,
        }
    }

    /// Adopts the Record Protector's unprotect thresholds.
    pub fn set_protection_params(&mut self, rp: &RpConfig) {
        self.unprotect_prefetch_threshold = rp.unprotect_prefetch_threshold;
        self.unprotect_idle_cycles = rp.unprotect_idle_cycles;
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &AtConfig {
        &self.cfg
    }

    /// A buffer, for inspection.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= n_buffers`.
    pub fn buffer(&self, idx: usize) -> &AccessBuffer {
        &self.buffers[idx]
    }

    /// Number of currently protected buffers (paper Figure 12's quantity).
    pub fn protected_count(&self) -> usize {
        self.buffers.iter().filter(|b| b.valid && b.protected).count()
    }

    /// Number of valid (associated) buffers.
    pub fn valid_count(&self) -> usize {
        self.buffers.iter().filter(|b| b.valid).count()
    }

    /// Clears all buffers.
    pub fn reset(&mut self) {
        let cap = self.cfg.entries_per_buffer;
        for b in &mut self.buffers {
            *b = AccessBuffer::empty(cap);
        }
        self.seq = 0;
    }

    /// Processes one load access.
    ///
    /// * `pc` — the load instruction's address;
    /// * `blk` — the accessed *block* (line-aligned) address;
    /// * `rp_hit` — `(sc, BlkAddr)` when the Record Protector's scale
    ///   buffer matched this access (stage 2), else `None`;
    /// * `resident` — the "already in the L1D" probe.
    pub fn on_load(
        &mut self,
        pc: u64,
        blk: Addr,
        now: Cycle,
        rp_hit: Option<(u64, u64)>,
        resident: &dyn Fn(Addr) -> bool,
    ) -> AtDecision {
        self.expire_protection(now);

        // Stage 1: buffer allocation.
        let idx = match self.buffers.iter().position(|b| b.valid && b.inst_addr == pc) {
            Some(i) => i,
            None => match self.buffers.iter().position(|b| !b.valid) {
                Some(i) => {
                    self.buffers[i].reset_for(pc);
                    i
                }
                None => {
                    // LRU over unprotected buffers only (RP stage 2's rule;
                    // without RP every buffer is unprotected).
                    match self
                        .buffers
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| !b.protected)
                        .min_by_key(|(_, b)| b.touch_seq)
                        .map(|(i, _)| i)
                    {
                        Some(i) => {
                            self.buffers[i].reset_for(pc);
                            i
                        }
                        None => return AtDecision::NONE,
                    }
                }
            },
        };

        self.seq += 1;
        let seq = self.seq;
        let threshold = self.cfg.prefetch_threshold;
        let blk_raw = blk.raw();
        let unprotect_after = self.unprotect_prefetch_threshold;
        let b = &mut self.buffers[idx];
        b.touch_seq = seq;
        b.last_active = now;

        // Record Protector stage 2: protection status updating.
        if let Some((sc, pat_blk)) = rp_hit {
            if !b.protected {
                b.guided_prefetches = 0;
            }
            b.protected = true;
            b.protected_scale = Some((sc, pat_blk));
        }

        // Stage 2: entry updating.
        if let Some(e) = b.entries.iter_mut().find(|(addr, _)| *addr == blk_raw) {
            e.1 = seq;
        } else {
            if b.entries.len() >= self.cfg.entries_per_buffer {
                let victim = b
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, touch))| *touch)
                    .map(|(i, _)| i)
                    .expect("buffer is full, hence nonempty");
                b.entries.swap_remove(victim);
            }
            b.entries.push((blk_raw, seq));
            // Stage 3: DiffMin updating.
            b.recompute_diffmin();
        }

        // Record Protector stage 3 / AT stage 4: prefetching.
        let guided_scale = if let Some((sc, _)) = rp_hit {
            Some(sc)
        } else if b.protected {
            b.protected_scale.and_then(|(sc, pat_blk)| {
                let diff = blk_raw as i128 - pat_blk as i128;
                (diff.rem_euclid(sc as i128) == 0).then_some(sc)
            })
        } else {
            None
        };

        let stride = if let Some(sc) = guided_scale {
            Some((sc, PrefetchSource::RecordProtector))
        } else if b.entries.len() >= threshold {
            b.diffmin.map(|d| (d, PrefetchSource::AccessTracker))
        } else {
            None
        };

        let mut prefetch = None;
        if let Some((stride, source)) = stride {
            for delta in [stride as i64, -(stride as i64)] {
                if let Some(cand) = blk.offset(delta) {
                    if !b.contains(cand.raw()) && !resident(cand) {
                        prefetch = Some((cand, source));
                        break;
                    }
                }
            }
            if prefetch.is_some() && source == PrefetchSource::RecordProtector {
                b.guided_prefetches += 1;
                if b.guided_prefetches > unprotect_after {
                    b.protected = false;
                    b.protected_scale = None;
                    b.guided_prefetches = 0;
                }
            }
        }

        AtDecision { prefetch, buffer: Some(idx) }
    }

    fn expire_protection(&mut self, now: Cycle) {
        let idle = self.unprotect_idle_cycles;
        for b in &mut self.buffers {
            if b.protected && now.since(b.last_active) > idle {
                b.protected = false;
                b.protected_scale = None;
                b.guided_prefetches = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(n_buffers: usize) -> AccessTracker {
        AccessTracker::new(AtConfig { n_buffers, ..AtConfig::paper() })
    }

    const NOT_RESIDENT: fn(Addr) -> bool = |_| false;

    fn probe(t: &mut AccessTracker, pc: u64, blk: u64, at_cycle: u64) -> AtDecision {
        t.on_load(pc, Addr::new(blk), Cycle::new(at_cycle), None, &NOT_RESIDENT)
    }

    #[test]
    fn buffer_associates_by_pc() {
        let mut t = at(4);
        let d1 = probe(&mut t, 0x8008, 0x1000, 0);
        let d2 = probe(&mut t, 0x8008, 0x1600, 1);
        assert_eq!(d1.buffer, d2.buffer);
        let d3 = probe(&mut t, 0x8018, 0x2000, 2);
        assert_ne!(d1.buffer, d3.buffer);
        assert_eq!(t.valid_count(), 2);
    }

    #[test]
    fn figure_6_example() {
        // Buffer[0] is associated with load 0x8008 and holds 0x1000,
        // 0x1F00, 0x1600, 0x2800 (256-byte lines in the figure; we use the
        // raw blocks directly). Access to 0x1C00 updates DiffMin to 0x300
        // = |0x1F00 - 0x1C00| and prefetches 0x1C00 - 0x300 because
        // 0x1C00 + 0x300 = 0x1F00 is already in the buffer.
        let mut t = at(4);
        for (i, blk) in [0x1000u64, 0x1F00, 0x1600, 0x2800].into_iter().enumerate() {
            probe(&mut t, 0x8008, blk, i as u64);
        }
        let d = probe(&mut t, 0x8008, 0x1C00, 4);
        let buf = t.buffer(d.buffer.unwrap());
        assert_eq!(buf.diffmin(), Some(0x300));
        assert_eq!(d.prefetch, Some((Addr::new(0x1900), PrefetchSource::AccessTracker)));
    }

    #[test]
    fn no_prefetch_below_threshold() {
        let mut t = at(4);
        assert_eq!(probe(&mut t, 0x8008, 0x1000, 0).prefetch, None);
        assert_eq!(probe(&mut t, 0x8008, 0x1200, 1).prefetch, None);
        assert_eq!(probe(&mut t, 0x8008, 0x1400, 2).prefetch, None);
        // 4th distinct entry reaches the threshold.
        let d = probe(&mut t, 0x8008, 0x1600, 3);
        assert_eq!(d.prefetch, Some((Addr::new(0x1800), PrefetchSource::AccessTracker)));
    }

    #[test]
    fn random_probe_order_still_learns_stride() {
        // Challenge C2: eviction lines at 0x200 steps probed in random
        // order; DiffMin converges to 0x200.
        let mut t = at(4);
        let order = [7u64, 2, 11, 5, 3, 9, 1, 8];
        let mut decisions = Vec::new();
        for (i, k) in order.into_iter().enumerate() {
            decisions.push(probe(&mut t, 0x8008, 0x10_0000 + k * 0x200, i as u64));
        }
        let buf = t.buffer(decisions.last().unwrap().buffer.unwrap());
        assert_eq!(buf.diffmin(), Some(0x200));
        // Some probes have both neighbours already recorded (no prefetch),
        // but the randomized walk as a whole must prefetch eviction lines.
        let prefetched: Vec<_> = decisions.iter().filter_map(|d| d.prefetch).collect();
        assert!(!prefetched.is_empty());
        for (addr, _) in prefetched {
            assert_eq!((addr.raw() - 0x10_0000) % 0x200, 0, "on-pattern prefetch");
        }
    }

    #[test]
    fn repeated_block_touches_do_not_duplicate() {
        let mut t = at(4);
        probe(&mut t, 0x8008, 0x1000, 0);
        probe(&mut t, 0x8008, 0x1000, 1);
        let d = probe(&mut t, 0x8008, 0x1000, 2);
        assert_eq!(t.buffer(d.buffer.unwrap()).blocks(), vec![0x1000]);
    }

    #[test]
    fn entry_lru_eviction_when_full() {
        let mut t = at(1);
        // 8 entries fill; the 9th evicts the LRU (0x1000).
        for (i, k) in (0..9u64).enumerate() {
            probe(&mut t, 0x8008, 0x1000 + k * 0x100, i as u64);
        }
        let blocks = t.buffer(0).blocks();
        assert_eq!(blocks.len(), 8);
        assert!(!blocks.contains(&0x1000));
        assert!(blocks.contains(&0x1800));
    }

    #[test]
    fn buffer_lru_replacement_when_all_valid() {
        let mut t = at(2);
        probe(&mut t, 0x8000, 0x1000, 0);
        probe(&mut t, 0x8010, 0x2000, 1);
        probe(&mut t, 0x8000, 0x1100, 2); // touch 0x8000's buffer
                                          // A third PC steals the LRU buffer (0x8010's).
        probe(&mut t, 0x8020, 0x3000, 3);
        let pcs: Vec<u64> = (0..2).map(|i| t.buffer(i).inst_addr()).collect();
        assert!(pcs.contains(&0x8000) && pcs.contains(&0x8020));
    }

    #[test]
    fn protected_buffers_survive_lru_thrash() {
        // Challenge C3: noise PCs must not evict a protected buffer.
        let mut t = at(2);
        t.set_protection_params(&RpConfig::paper());
        // Attacker's load, protected via an rp hit.
        t.on_load(0x8008, Addr::new(0x1000), Cycle::new(0), Some((0x200, 0x1000)), &NOT_RESIDENT);
        assert_eq!(t.protected_count(), 1);
        // Noise: many distinct PCs.
        for (i, pc) in (0..8u64).map(|k| 0x9000 + k * 8).enumerate() {
            probe(&mut t, pc, 0x5000 + i as u64 * 0x40, 10 + i as u64);
        }
        // The protected buffer still belongs to 0x8008.
        assert!((0..2).any(|i| t.buffer(i).inst_addr() == 0x8008 && t.buffer(i).is_protected()));
    }

    #[test]
    fn all_buffers_protected_yields_no_decision() {
        let mut t = at(1);
        t.set_protection_params(&RpConfig::paper());
        t.on_load(0x8008, Addr::new(0x1000), Cycle::new(0), Some((0x200, 0x1000)), &NOT_RESIDENT);
        let d = probe(&mut t, 0x9000, 0x2000, 1);
        assert_eq!(d, AtDecision::NONE);
    }

    #[test]
    fn rp_hit_guides_prefetch_over_diffmin() {
        // Challenge C4: DiffMin corrupted to 0x100 by a noisy access, but
        // the hit scale 0x200 guides the prefetch.
        let mut t = at(4);
        t.set_protection_params(&RpConfig::paper());
        for (i, blk) in [0x8000u64, 0x8200, 0x8400, 0x8600].into_iter().enumerate() {
            t.on_load(
                0x8008,
                Addr::new(blk),
                Cycle::new(i as u64),
                Some((0x200, 0x8000)),
                &NOT_RESIDENT,
            );
        }
        // Noisy access to a non-eviction line corrupts DiffMin (no rp hit).
        let d = probe(&mut t, 0x8008, 0x8100, 4);
        let buf = t.buffer(d.buffer.unwrap());
        assert_eq!(buf.diffmin(), Some(0x100), "DiffMin was corrupted by the noise");
        // Next eviction-line access hits the protected scale and is guided
        // by 0x200, not 0x100.
        let d = t.on_load(
            0x8008,
            Addr::new(0x8800),
            Cycle::new(5),
            Some((0x200, 0x8000)),
            &NOT_RESIDENT,
        );
        assert_eq!(d.prefetch, Some((Addr::new(0x8A00), PrefetchSource::RecordProtector)));
    }

    #[test]
    fn protected_scale_applies_after_scale_buffer_eviction() {
        // Figure 7(b): the scale-buffer entry is gone (rp_hit = None) but
        // the buffer's own protected-scale registers still match.
        let mut t = at(4);
        t.set_protection_params(&RpConfig::paper());
        t.on_load(0x8008, Addr::new(0x2400), Cycle::new(0), Some((0x400, 0x1000)), &NOT_RESIDENT);
        let d = probe(&mut t, 0x8008, 0x2C00, 1); // (0x2C00-0x1000) % 0x400 == 0
        assert_eq!(d.prefetch, Some((Addr::new(0x3000), PrefetchSource::RecordProtector)));
    }

    #[test]
    fn guided_prefetch_count_unprotects() {
        let mut t = at(4);
        t.set_protection_params(&RpConfig { unprotect_prefetch_threshold: 2, ..RpConfig::paper() });
        t.on_load(0x8008, Addr::new(0x1000), Cycle::new(0), Some((0x200, 0x1000)), &NOT_RESIDENT);
        // Each access prefetches via the protected scale; after exceeding
        // the threshold the buffer unprotects.
        for k in 1..=3u64 {
            probe(&mut t, 0x8008, 0x1000 + k * 0x200, k);
        }
        assert_eq!(t.protected_count(), 0);
    }

    #[test]
    fn idle_timeout_unprotects() {
        let mut t = at(4);
        t.set_protection_params(&RpConfig { unprotect_idle_cycles: 100, ..RpConfig::paper() });
        t.on_load(0x8008, Addr::new(0x1000), Cycle::new(0), Some((0x200, 0x1000)), &NOT_RESIDENT);
        assert_eq!(t.protected_count(), 1);
        probe(&mut t, 0x9000, 0x2000, 500); // any access after the idle window
        assert_eq!(t.protected_count(), 0);
    }

    #[test]
    fn resident_candidate_skipped() {
        let mut t = at(4);
        for (i, blk) in [0x1000u64, 0x1200, 0x1400, 0x1600].into_iter().enumerate() {
            t.on_load(0x8008, Addr::new(blk), Cycle::new(i as u64), None, &NOT_RESIDENT);
        }
        // +diffmin (0x1A00) is resident; -diffmin (0x1600) is in the
        // buffer: no prefetch at all.
        let d = t.on_load(0x8008, Addr::new(0x1800), Cycle::new(4), None, &|a| a.raw() == 0x1A00);
        assert_eq!(d.prefetch, None);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = at(2);
        probe(&mut t, 0x8008, 0x1000, 0);
        t.reset();
        assert_eq!(t.valid_count(), 0);
        assert_eq!(t.protected_count(), 0);
    }
}
