//! Architectural registers.

use std::fmt;

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

/// An architectural register, `r0`–`r31`.
///
/// `r0` is an ordinary register (not hardwired to zero); the Scale Tracker
/// keeps one `(fva, sc)` calculation-buffer entry per register.
///
/// # Examples
///
/// ```
/// use prefender_isa::Reg;
///
/// let r = Reg::new(5).unwrap();
/// assert_eq!(r.to_string(), "r5");
/// assert_eq!(r.index(), 5);
/// assert!(Reg::new(32).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

macro_rules! reg_consts {
    ($($name:ident = $n:expr),* $(,)?) => {
        impl Reg {
            $(
                #[doc = concat!("Register r", stringify!($n), ".")]
                pub const $name: Reg = Reg($n);
            )*
        }
    };
}

reg_consts! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
    R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21, R22 = 22, R23 = 23,
    R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28, R29 = 29, R30 = 30, R31 = 31,
}

impl Reg {
    /// Creates register `n`, or `None` when `n >= NUM_REGS`.
    pub const fn new(n: u8) -> Option<Reg> {
        if (n as usize) < NUM_REGS {
            Some(Reg(n))
        } else {
            None
        }
    }

    /// The register's index in `0..NUM_REGS`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all registers in order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds() {
        assert_eq!(Reg::new(0), Some(Reg::R0));
        assert_eq!(Reg::new(31), Some(Reg::R31));
        assert_eq!(Reg::new(32), None);
        assert_eq!(Reg::new(255), None);
    }

    #[test]
    fn index_round_trips() {
        for r in Reg::all() {
            assert_eq!(Reg::new(r.index() as u8), Some(r));
        }
    }

    #[test]
    fn all_yields_32() {
        assert_eq!(Reg::all().count(), NUM_REGS);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::R17.to_string(), "r17");
    }
}
