//! A small two-pass text assembler.
//!
//! Syntax (one instruction per line, `;` starts a comment):
//!
//! ```text
//! loop:                     ; labels end with ':'
//!     li    r1, 0x200       ; immediates are decimal or 0x-hex, signs allowed
//!     ld    r2, 0(r1)       ; memory operands are offset(base)
//!     st    r2, -8(r1)
//!     add   r3, r1, r2      ; third operand: register or immediate
//!     mul   r4, r3, 64
//!     flush 0(r1)
//!     rdtsc r5
//!     bnz   r3, loop        ; branch targets are labels or @<index>
//!     halt
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::instr::{Instr, Operand};
use crate::program::Program;
use crate::reg::Reg;

/// An assembler diagnostic, pointing at a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The category of assembler error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// The mnemonic is not part of the ISA.
    UnknownMnemonic(String),
    /// A register operand did not parse (`r0`–`r31`).
    BadRegister(String),
    /// A numeric operand did not parse.
    BadNumber(String),
    /// A memory operand was not of the form `offset(base)`.
    BadMemoryOperand(String),
    /// Wrong number of operands for the mnemonic.
    WrongArity {
        /// The mnemonic.
        mnemonic: String,
        /// Operands required.
        expected: usize,
        /// Operands given.
        got: usize,
    },
    /// A branch referenced a label that is never defined.
    UnknownLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            ParseErrorKind::BadRegister(t) => write!(f, "invalid register `{t}`"),
            ParseErrorKind::BadNumber(t) => write!(f, "invalid number `{t}`"),
            ParseErrorKind::BadMemoryOperand(t) => {
                write!(f, "invalid memory operand `{t}` (expected offset(base))")
            }
            ParseErrorKind::WrongArity { mnemonic, expected, got } => {
                write!(f, "`{mnemonic}` takes {expected} operands, got {got}")
            }
            ParseErrorKind::UnknownLabel(l) => write!(f, "undefined label `{l}`"),
            ParseErrorKind::DuplicateLabel(l) => write!(f, "label `{l}` defined twice"),
        }
    }
}

impl Error for ParseError {}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn is_label_def(tok: &str) -> bool {
    tok.ends_with(':')
        && tok.len() > 1
        && tok[..tok.len() - 1].chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Assembles `src` into a [`Program`].
pub fn parse(src: &str) -> Result<Program, ParseError> {
    // Pass 1: label positions.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut idx = 0usize;
    for (ln, raw) in src.lines().enumerate() {
        let mut rest = strip_comment(raw).trim();
        while let Some(tok) = rest.split_whitespace().next() {
            if is_label_def(tok) {
                let name = tok[..tok.len() - 1].to_owned();
                if labels.insert(name.clone(), idx).is_some() {
                    return Err(ParseError {
                        line: ln + 1,
                        kind: ParseErrorKind::DuplicateLabel(name),
                    });
                }
                rest = rest[tok.len()..].trim_start();
            } else {
                break;
            }
        }
        if !rest.is_empty() {
            idx += 1;
        }
    }

    // Pass 2: instructions.
    let mut instrs = Vec::with_capacity(idx);
    for (ln, raw) in src.lines().enumerate() {
        let mut rest = strip_comment(raw).trim();
        while let Some(tok) = rest.split_whitespace().next() {
            if is_label_def(tok) {
                rest = rest[tok.len()..].trim_start();
            } else {
                break;
            }
        }
        if rest.is_empty() {
            continue;
        }
        instrs.push(parse_instr(rest, ln + 1, &labels)?);
    }
    Program::from_instrs(instrs).map_err(|e| ParseError {
        line: 0,
        kind: ParseErrorKind::UnknownLabel(format!("internal: {e}")),
    })
}

fn parse_instr(
    text: &str,
    line: usize,
    labels: &HashMap<String, usize>,
) -> Result<Instr, ParseError> {
    let (mnemonic, ops_text) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> =
        if ops_text.is_empty() { Vec::new() } else { ops_text.split(',').map(str::trim).collect() };
    let err = |kind| ParseError { line, kind };
    let arity = |expected: usize| -> Result<(), ParseError> {
        if ops.len() == expected {
            Ok(())
        } else {
            Err(err(ParseErrorKind::WrongArity {
                mnemonic: mnemonic.to_owned(),
                expected,
                got: ops.len(),
            }))
        }
    };
    let reg = |t: &str| -> Result<Reg, ParseError> {
        t.strip_prefix('r')
            .and_then(|n| n.parse::<u8>().ok())
            .and_then(Reg::new)
            .ok_or_else(|| err(ParseErrorKind::BadRegister(t.to_owned())))
    };
    let num = |t: &str| -> Result<i64, ParseError> {
        parse_num(t).ok_or_else(|| err(ParseErrorKind::BadNumber(t.to_owned())))
    };
    let operand = |t: &str| -> Result<Operand, ParseError> {
        if t.starts_with('r') && reg(t).is_ok() {
            Ok(Operand::Reg(reg(t)?))
        } else {
            Ok(Operand::Imm(num(t)?))
        }
    };
    let mem = |t: &str| -> Result<(i64, Reg), ParseError> {
        let open =
            t.find('(').ok_or_else(|| err(ParseErrorKind::BadMemoryOperand(t.to_owned())))?;
        if !t.ends_with(')') {
            return Err(err(ParseErrorKind::BadMemoryOperand(t.to_owned())));
        }
        let off_txt = t[..open].trim();
        let offset = if off_txt.is_empty() { 0 } else { num(off_txt)? };
        let base = reg(t[open + 1..t.len() - 1].trim())?;
        Ok((offset, base))
    };
    let target = |t: &str| -> Result<usize, ParseError> {
        if let Some(raw) = t.strip_prefix('@') {
            raw.parse::<usize>().map_err(|_| err(ParseErrorKind::BadNumber(t.to_owned())))
        } else {
            labels.get(t).copied().ok_or_else(|| err(ParseErrorKind::UnknownLabel(t.to_owned())))
        }
    };

    match mnemonic {
        "li" => {
            arity(2)?;
            Ok(Instr::LoadImm { rd: reg(ops[0])?, imm: num(ops[1])? })
        }
        "ld" => {
            arity(2)?;
            let (offset, base) = mem(ops[1])?;
            Ok(Instr::Load { rd: reg(ops[0])?, base, offset })
        }
        "st" => {
            arity(2)?;
            let (offset, base) = mem(ops[1])?;
            Ok(Instr::Store { src: reg(ops[0])?, base, offset })
        }
        "add" | "sub" | "mul" | "shl" | "shr" | "and" | "or" | "xor" => {
            arity(3)?;
            let rd = reg(ops[0])?;
            let a = reg(ops[1])?;
            let b = operand(ops[2])?;
            Ok(match mnemonic {
                "add" => Instr::Add { rd, a, b },
                "sub" => Instr::Sub { rd, a, b },
                "mul" => Instr::Mul { rd, a, b },
                "shl" => Instr::Shl { rd, a, b },
                "shr" => Instr::Shr { rd, a, b },
                "and" => Instr::And { rd, a, b },
                "or" => Instr::Or { rd, a, b },
                _ => Instr::Xor { rd, a, b },
            })
        }
        "mov" => {
            arity(2)?;
            Ok(Instr::Mov { rd: reg(ops[0])?, rs: reg(ops[1])? })
        }
        "flush" => {
            arity(1)?;
            let (offset, base) = mem(ops[0])?;
            Ok(Instr::Flush { base, offset })
        }
        "rdtsc" => {
            arity(1)?;
            Ok(Instr::Rdtsc { rd: reg(ops[0])? })
        }
        "nop" => {
            arity(0)?;
            Ok(Instr::Nop)
        }
        "jmp" => {
            arity(1)?;
            Ok(Instr::Jmp { target: target(ops[0])? })
        }
        "bnz" => {
            arity(2)?;
            Ok(Instr::Bnz { cond: reg(ops[0])?, target: target(ops[1])? })
        }
        "beq" => {
            arity(3)?;
            Ok(Instr::Beq { a: reg(ops[0])?, b: reg(ops[1])?, target: target(ops[2])? })
        }
        "blt" => {
            arity(3)?;
            Ok(Instr::Blt { a: reg(ops[0])?, b: reg(ops[1])?, target: target(ops[2])? })
        }
        "halt" => {
            arity(0)?;
            Ok(Instr::Halt)
        }
        other => Err(err(ParseErrorKind::UnknownMnemonic(other.to_owned()))),
    }
}

fn parse_num(t: &str) -> Option<i64> {
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    // Parse the magnitude wide, then range-check: `-0x8000000000000000`
    // (i64::MIN) is valid while its positive twin is not.
    let mag: i128 = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i128::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else {
        t.replace('_', "").parse::<i128>().ok()?
    };
    let v = if neg { -mag } else { mag };
    i64::try_from(v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_mnemonic() {
        let p = Program::parse(
            "
            start:
                li r1, 0x200
                ld r2, 0(r1)
                st r2, 8(r1)
                add r3, r1, r2
                sub r3, r3, 1
                mul r4, r3, 64
                shl r5, r4, 2
                shr r5, r5, r1
                and r6, r5, 0xff
                or r6, r6, r1
                xor r6, r6, r6
                mov r7, r6
                flush 0(r1)
                rdtsc r8
                nop
                jmp fwd
                bnz r1, start
            fwd:
                beq r1, r2, start
                blt r1, r2, fwd
                halt
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 20);
        assert_eq!(p.instr(15), Some(&Instr::Jmp { target: 17 }));
        assert_eq!(p.instr(16), Some(&Instr::Bnz { cond: Reg::R1, target: 0 }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = Program::parse("; a comment\n\n  nop ; trailing\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let p = Program::parse("top: nop\n jmp top\n").unwrap();
        assert_eq!(p.instr(1), Some(&Instr::Jmp { target: 0 }));
    }

    #[test]
    fn negative_and_hex_numbers() {
        let p = Program::parse("li r1, -42\nli r2, 0xFF\nld r3, -64(r1)\n").unwrap();
        assert_eq!(p.instr(0), Some(&Instr::LoadImm { rd: Reg::R1, imm: -42 }));
        assert_eq!(p.instr(1), Some(&Instr::LoadImm { rd: Reg::R2, imm: 255 }));
        assert_eq!(p.instr(2), Some(&Instr::Load { rd: Reg::R3, base: Reg::R1, offset: -64 }));
    }

    #[test]
    fn raw_index_targets() {
        let p = Program::parse("nop\njmp @0\n").unwrap();
        assert_eq!(p.instr(1), Some(&Instr::Jmp { target: 0 }));
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = Program::parse("nop\nfrobnicate r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, ParseErrorKind::UnknownMnemonic(ref m) if m == "frobnicate"));
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn bad_register_rejected() {
        let e = Program::parse("li r32, 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::BadRegister(_)));
    }

    #[test]
    fn wrong_arity_rejected() {
        let e = Program::parse("add r1, r2\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::WrongArity { expected: 3, got: 2, .. }));
    }

    #[test]
    fn undefined_label_rejected() {
        let e = Program::parse("jmp nowhere\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::UnknownLabel(ref l) if l == "nowhere"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = Program::parse("x:\nnop\nx:\nnop\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::DuplicateLabel(ref l) if l == "x"));
    }

    #[test]
    fn bad_memory_operand_rejected() {
        let e = Program::parse("ld r1, r2\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::BadMemoryOperand(_)));
    }

    #[test]
    fn underscores_in_numbers() {
        let p = Program::parse("li r1, 1_000_000\nli r2, 0x10_00\n").unwrap();
        assert_eq!(p.instr(0), Some(&Instr::LoadImm { rd: Reg::R1, imm: 1_000_000 }));
        assert_eq!(p.instr(1), Some(&Instr::LoadImm { rd: Reg::R2, imm: 0x1000 }));
    }

    #[test]
    fn offsetless_memory_operand_defaults_to_zero() {
        let p = Program::parse("ld r1, (r2)\n").unwrap();
        assert_eq!(p.instr(0), Some(&Instr::Load { rd: Reg::R1, base: Reg::R2, offset: 0 }));
    }
}
