//! Instructions and operands.

use std::fmt;

use crate::reg::Reg;

/// The second source of a three-operand ALU instruction: a register or an
/// immediate. The Scale Tracker's Table III rules distinguish exactly these
/// two cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register source.
    Reg(Reg),
    /// An immediate (constant) source.
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Self {
        Operand::Imm(i)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// One instruction of the simulated ISA.
///
/// Branch targets are *resolved* instruction indices; use
/// [`ProgramBuilder`](crate::ProgramBuilder) or [`Program::parse`](crate::Program::parse)
/// to write label-based control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `rd <- imm` — immediate load (Table III: sets `fva = imm, sc = 1`).
    LoadImm {
        /// Destination register.
        rd: Reg,
        /// The constant.
        imm: i64,
    },
    /// `rd <- mem[base + offset]` — 8-byte data load
    /// (Table III: reinitializes `fva = NA, sc = 1`).
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
    },
    /// `mem[base + offset] <- src` — 8-byte data store.
    Store {
        /// Value register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
    },
    /// `rd <- a + b`.
    Add {
        /// Destination register.
        rd: Reg,
        /// First source.
        a: Reg,
        /// Second source (register or immediate).
        b: Operand,
    },
    /// `rd <- a - b` (Table III: addition rules with `+` replaced by `-`).
    Sub {
        /// Destination register.
        rd: Reg,
        /// First source.
        a: Reg,
        /// Second source.
        b: Operand,
    },
    /// `rd <- a * b`.
    Mul {
        /// Destination register.
        rd: Reg,
        /// First source.
        a: Reg,
        /// Second source.
        b: Operand,
    },
    /// `rd <- a << b` (Table III: multiplication rules).
    Shl {
        /// Destination register.
        rd: Reg,
        /// First source.
        a: Reg,
        /// Shift amount.
        b: Operand,
    },
    /// `rd <- a >> b` (logical; Table III: multiplication rules).
    Shr {
        /// Destination register.
        rd: Reg,
        /// First source.
        a: Reg,
        /// Shift amount.
        b: Operand,
    },
    /// `rd <- a & b` (an "otherwise" op for the Scale Tracker).
    And {
        /// Destination register.
        rd: Reg,
        /// First source.
        a: Reg,
        /// Second source.
        b: Operand,
    },
    /// `rd <- a | b` (an "otherwise" op for the Scale Tracker).
    Or {
        /// Destination register.
        rd: Reg,
        /// First source.
        a: Reg,
        /// Second source.
        b: Operand,
    },
    /// `rd <- a ^ b` (an "otherwise" op for the Scale Tracker).
    Xor {
        /// Destination register.
        rd: Reg,
        /// First source.
        a: Reg,
        /// Second source.
        b: Operand,
    },
    /// `rd <- rs` — register move (propagates `(fva, sc)` unchanged).
    Mov {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `clflush [base + offset]` — removes the line from every cache level.
    Flush {
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i64,
    },
    /// `rd <- current cycle` — the attacker's timer (x86 `rdtscp`).
    Rdtsc {
        /// Destination register.
        rd: Reg,
    },
    /// No operation (1 cycle).
    Nop,
    /// Unconditional jump to instruction index `target`.
    Jmp {
        /// Resolved instruction index.
        target: usize,
    },
    /// Branch to `target` when `cond != 0`.
    Bnz {
        /// Condition register.
        cond: Reg,
        /// Resolved instruction index.
        target: usize,
    },
    /// Branch to `target` when `a == b`.
    Beq {
        /// First comparand.
        a: Reg,
        /// Second comparand.
        b: Reg,
        /// Resolved instruction index.
        target: usize,
    },
    /// Branch to `target` when `a < b` (unsigned).
    Blt {
        /// First comparand.
        a: Reg,
        /// Second comparand.
        b: Reg,
        /// Resolved instruction index.
        target: usize,
    },
    /// Stop the core.
    Halt,
}

impl Instr {
    /// `true` when executing this instruction writes an architectural
    /// register — the instructions a register-dataflow tracker (the
    /// Scale Tracker's calculation buffer) can observe an effect from.
    /// Branches, stores, flushes, `nop` and `halt` return `false`.
    pub fn writes_reg(&self) -> bool {
        self.dest().is_some()
    }

    /// The destination register this instruction writes, if any.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Instr::LoadImm { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Add { rd, .. }
            | Instr::Sub { rd, .. }
            | Instr::Mul { rd, .. }
            | Instr::Shl { rd, .. }
            | Instr::Shr { rd, .. }
            | Instr::And { rd, .. }
            | Instr::Or { rd, .. }
            | Instr::Xor { rd, .. }
            | Instr::Mov { rd, .. }
            | Instr::Rdtsc { rd } => Some(rd),
            _ => None,
        }
    }

    /// `true` for instructions that access the data cache.
    pub fn is_memory(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. } | Instr::Flush { .. })
    }

    /// `true` for control-flow instructions.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instr::Jmp { .. } | Instr::Bnz { .. } | Instr::Beq { .. } | Instr::Blt { .. }
        )
    }

    /// The branch target when this is a control-flow instruction.
    pub fn branch_target(&self) -> Option<usize> {
        match *self {
            Instr::Jmp { target }
            | Instr::Bnz { target, .. }
            | Instr::Beq { target, .. }
            | Instr::Blt { target, .. } => Some(target),
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    /// Renders the instruction in the assembler's syntax. Branch targets
    /// print as raw indices (`@12`); [`Program`](crate::Program)'s
    /// `Display` re-labels them.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::LoadImm { rd, imm } => {
                if imm < 0 {
                    write!(f, "li {rd}, -{:#x}", imm.unsigned_abs())
                } else {
                    write!(f, "li {rd}, {imm:#x}")
                }
            }
            Instr::Load { rd, base, offset } => write!(f, "ld {rd}, {offset}({base})"),
            Instr::Store { src, base, offset } => write!(f, "st {src}, {offset}({base})"),
            Instr::Add { rd, a, b } => write!(f, "add {rd}, {a}, {b}"),
            Instr::Sub { rd, a, b } => write!(f, "sub {rd}, {a}, {b}"),
            Instr::Mul { rd, a, b } => write!(f, "mul {rd}, {a}, {b}"),
            Instr::Shl { rd, a, b } => write!(f, "shl {rd}, {a}, {b}"),
            Instr::Shr { rd, a, b } => write!(f, "shr {rd}, {a}, {b}"),
            Instr::And { rd, a, b } => write!(f, "and {rd}, {a}, {b}"),
            Instr::Or { rd, a, b } => write!(f, "or {rd}, {a}, {b}"),
            Instr::Xor { rd, a, b } => write!(f, "xor {rd}, {a}, {b}"),
            Instr::Mov { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Instr::Flush { base, offset } => write!(f, "flush {offset}({base})"),
            Instr::Rdtsc { rd } => write!(f, "rdtsc {rd}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Jmp { target } => write!(f, "jmp @{target}"),
            Instr::Bnz { cond, target } => write!(f, "bnz {cond}, @{target}"),
            Instr::Beq { a, b, target } => write!(f, "beq {a}, {b}, @{target}"),
            Instr::Blt { a, b, target } => write!(f, "blt {a}, {b}, @{target}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_registers() {
        assert_eq!(Instr::LoadImm { rd: Reg::R3, imm: 1 }.dest(), Some(Reg::R3));
        assert_eq!(Instr::Mov { rd: Reg::R1, rs: Reg::R2 }.dest(), Some(Reg::R1));
        assert_eq!(Instr::Store { src: Reg::R1, base: Reg::R2, offset: 0 }.dest(), None);
        assert_eq!(Instr::Halt.dest(), None);
        assert_eq!(Instr::Rdtsc { rd: Reg::R9 }.dest(), Some(Reg::R9));
    }

    #[test]
    fn classification() {
        assert!(Instr::Load { rd: Reg::R1, base: Reg::R2, offset: 8 }.is_memory());
        assert!(Instr::Flush { base: Reg::R2, offset: 0 }.is_memory());
        assert!(!Instr::Nop.is_memory());
        assert!(Instr::Jmp { target: 0 }.is_branch());
        assert_eq!(Instr::Bnz { cond: Reg::R1, target: 7 }.branch_target(), Some(7));
        assert_eq!(Instr::Nop.branch_target(), None);
    }

    #[test]
    fn display_syntax() {
        assert_eq!(Instr::LoadImm { rd: Reg::R1, imm: 0x200 }.to_string(), "li r1, 0x200");
        assert_eq!(
            Instr::Load { rd: Reg::R2, base: Reg::R1, offset: -8 }.to_string(),
            "ld r2, -8(r1)"
        );
        assert_eq!(
            Instr::Add { rd: Reg::R3, a: Reg::R1, b: Operand::Imm(4) }.to_string(),
            "add r3, r1, 4"
        );
        assert_eq!(
            Instr::Mul { rd: Reg::R3, a: Reg::R1, b: Operand::Reg(Reg::R2) }.to_string(),
            "mul r3, r1, r2"
        );
        assert_eq!(Instr::Flush { base: Reg::R4, offset: 64 }.to_string(), "flush 64(r4)");
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg::R7), Operand::Reg(Reg::R7));
        assert_eq!(Operand::from(42i64), Operand::Imm(42));
    }
}
