//! Programs and the label-aware builder.

use std::error::Error;
use std::fmt;

use crate::asm;
use crate::instr::{Instr, Operand};
use crate::reg::Reg;

/// Default code base address: instruction `i` has PC `base + 4*i`.
///
/// PCs matter — the Access Tracker associates access buffers with *load
/// instruction addresses*, and the C3 noise attack thrashes them with many
/// distinct load PCs.
pub const DEFAULT_BASE_PC: u64 = 0x8000;

/// Errors from [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A label was created and referenced but never bound.
    UnboundLabel {
        /// The label's internal id.
        id: usize,
    },
    /// A raw branch target pointed outside the program.
    TargetOutOfRange {
        /// Index of the offending instruction.
        at: usize,
        /// The out-of-range target.
        target: usize,
        /// Program length.
        len: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel { id } => write!(f, "label {id} referenced but never bound"),
            BuildError::TargetOutOfRange { at, target, len } => {
                write!(
                    f,
                    "instruction {at} branches to {target}, but program has {len} instructions"
                )
            }
        }
    }
}

impl Error for BuildError {}

/// An opaque branch target handle created by a [`ProgramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) usize);

/// An immutable, validated instruction sequence.
///
/// # Examples
///
/// ```
/// use prefender_isa::{Program, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 4);
/// let top = b.label();
/// b.sub(Reg::R1, Reg::R1, 1);
/// b.bnz(Reg::R1, top);
/// b.halt();
/// let p: Program = b.build().unwrap();
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
    base_pc: u64,
    name: String,
}

impl Program {
    /// Wraps raw instructions, validating branch targets.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::TargetOutOfRange`] when a branch points past
    /// the end of the program.
    pub fn from_instrs(instrs: Vec<Instr>) -> Result<Self, BuildError> {
        let len = instrs.len();
        for (at, i) in instrs.iter().enumerate() {
            if let Some(target) = i.branch_target() {
                if target >= len {
                    return Err(BuildError::TargetOutOfRange { at, target, len });
                }
            }
        }
        Ok(Program { instrs, base_pc: DEFAULT_BASE_PC, name: String::new() })
    }

    /// Assembles a textual program. See the crate docs for the syntax.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`](crate::ParseError) pointing at the first
    /// offending source line.
    pub fn parse(src: &str) -> Result<Self, crate::ParseError> {
        asm::parse(src)
    }

    /// Names the program (used by stats output and the workload catalog).
    #[must_use]
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    /// Relocates the synthetic code base (distinct PCs across programs).
    #[must_use]
    pub fn with_base_pc(mut self, base_pc: u64) -> Self {
        self.base_pc = base_pc;
        self
    }

    /// The program's name (possibly empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Synthetic code base address.
    pub fn base_pc(&self) -> u64 {
        self.base_pc
    }

    /// The PC of instruction `idx`.
    pub fn pc_of(&self, idx: usize) -> u64 {
        self.base_pc + 4 * idx as u64
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` for an empty program.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `idx`, if any.
    pub fn instr(&self, idx: usize) -> Option<&Instr> {
        self.instrs.get(idx)
    }

    /// All instructions in order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }
}

impl fmt::Display for Program {
    /// Disassembles into text that [`Program::parse`] accepts, generating
    /// `L<n>` labels for branch targets.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut targets: Vec<usize> =
            self.instrs.iter().filter_map(|i| i.branch_target()).collect();
        targets.sort_unstable();
        targets.dedup();
        let label_of = |t: usize| -> Option<usize> { targets.binary_search(&t).ok() };
        for (idx, instr) in self.instrs.iter().enumerate() {
            if let Some(l) = label_of(idx) {
                writeln!(f, "L{l}:")?;
            }
            match instr.branch_target() {
                Some(t) => {
                    let l = label_of(t).expect("every target was collected");
                    let txt = instr.to_string();
                    let head = txt.split('@').next().expect("split yields at least one part");
                    writeln!(f, "    {head}L{l}")?;
                }
                None => writeln!(f, "    {instr}")?,
            }
        }
        Ok(())
    }
}

/// Incremental program construction with labels and forward references.
///
/// All emit methods return the instruction's index; label methods return
/// [`Label`] handles usable before they are bound.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    labels: Vec<Option<usize>>,
    patches: Vec<(usize, usize)>,
    base_pc: Option<u64>,
    name: String,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names the resulting program.
    pub fn name(&mut self, name: &str) -> &mut Self {
        self.name = name.to_owned();
        self
    }

    /// Sets the synthetic code base address.
    pub fn base_pc(&mut self, base: u64) -> &mut Self {
        self.base_pc = Some(base);
        self
    }

    /// Current instruction count (the index the next emit will get).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Creates a label bound to the current position.
    pub fn label(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Creates an unbound label for forward references.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (a logic error in the caller).
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.instrs.len());
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.instrs.len() - 1
    }

    fn emit_branch(&mut self, i: Instr, label: Label) -> usize {
        let at = self.emit(i);
        self.patches.push((at, label.0));
        at
    }

    /// `rd <- imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> usize {
        self.emit(Instr::LoadImm { rd, imm })
    }

    /// `rd <- mem[base + offset]`.
    pub fn ld(&mut self, rd: Reg, offset: i64, base: Reg) -> usize {
        self.emit(Instr::Load { rd, base, offset })
    }

    /// `mem[base + offset] <- src`.
    pub fn st(&mut self, src: Reg, offset: i64, base: Reg) -> usize {
        self.emit(Instr::Store { src, base, offset })
    }

    /// `rd <- a + b`.
    pub fn add(&mut self, rd: Reg, a: Reg, b: impl Into<Operand>) -> usize {
        self.emit(Instr::Add { rd, a, b: b.into() })
    }

    /// `rd <- a - b`.
    pub fn sub(&mut self, rd: Reg, a: Reg, b: impl Into<Operand>) -> usize {
        self.emit(Instr::Sub { rd, a, b: b.into() })
    }

    /// `rd <- a * b`.
    pub fn mul(&mut self, rd: Reg, a: Reg, b: impl Into<Operand>) -> usize {
        self.emit(Instr::Mul { rd, a, b: b.into() })
    }

    /// `rd <- a << b`.
    pub fn shl(&mut self, rd: Reg, a: Reg, b: impl Into<Operand>) -> usize {
        self.emit(Instr::Shl { rd, a, b: b.into() })
    }

    /// `rd <- a >> b`.
    pub fn shr(&mut self, rd: Reg, a: Reg, b: impl Into<Operand>) -> usize {
        self.emit(Instr::Shr { rd, a, b: b.into() })
    }

    /// `rd <- a & b`.
    pub fn and(&mut self, rd: Reg, a: Reg, b: impl Into<Operand>) -> usize {
        self.emit(Instr::And { rd, a, b: b.into() })
    }

    /// `rd <- a | b`.
    pub fn or(&mut self, rd: Reg, a: Reg, b: impl Into<Operand>) -> usize {
        self.emit(Instr::Or { rd, a, b: b.into() })
    }

    /// `rd <- a ^ b`.
    pub fn xor(&mut self, rd: Reg, a: Reg, b: impl Into<Operand>) -> usize {
        self.emit(Instr::Xor { rd, a, b: b.into() })
    }

    /// `rd <- rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> usize {
        self.emit(Instr::Mov { rd, rs })
    }

    /// `clflush [base + offset]`.
    pub fn flush(&mut self, offset: i64, base: Reg) -> usize {
        self.emit(Instr::Flush { base, offset })
    }

    /// `rd <- current cycle`.
    pub fn rdtsc(&mut self, rd: Reg) -> usize {
        self.emit(Instr::Rdtsc { rd })
    }

    /// No-op.
    pub fn nop(&mut self) -> usize {
        self.emit(Instr::Nop)
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, label: Label) -> usize {
        self.emit_branch(Instr::Jmp { target: 0 }, label)
    }

    /// Branch when `cond != 0`.
    pub fn bnz(&mut self, cond: Reg, label: Label) -> usize {
        self.emit_branch(Instr::Bnz { cond, target: 0 }, label)
    }

    /// Branch when `a == b`.
    pub fn beq(&mut self, a: Reg, b: Reg, label: Label) -> usize {
        self.emit_branch(Instr::Beq { a, b, target: 0 }, label)
    }

    /// Branch when `a < b` (unsigned).
    pub fn blt(&mut self, a: Reg, b: Reg, label: Label) -> usize {
        self.emit_branch(Instr::Blt { a, b, target: 0 }, label)
    }

    /// Stop the core.
    pub fn halt(&mut self) -> usize {
        self.emit(Instr::Halt)
    }

    /// Appends every instruction of `other` (labels are not imported).
    pub fn extend_raw(&mut self, other: &[Instr]) -> &mut Self {
        self.instrs.extend_from_slice(other);
        self
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnboundLabel`] if a referenced label was never
    /// bound.
    pub fn build(&self) -> Result<Program, BuildError> {
        let mut instrs = self.instrs.clone();
        for &(at, label_id) in &self.patches {
            let pos = self.labels[label_id].ok_or(BuildError::UnboundLabel { id: label_id })?;
            match &mut instrs[at] {
                Instr::Jmp { target }
                | Instr::Bnz { target, .. }
                | Instr::Beq { target, .. }
                | Instr::Blt { target, .. } => *target = pos,
                other => unreachable!("patched a non-branch: {other:?}"),
            }
        }
        let mut p = Program::from_instrs(instrs)?;
        if let Some(b) = self.base_pc {
            p = p.with_base_pc(b);
        }
        if !self.name.is_empty() {
            p = p.with_name(&self.name);
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_backward_branch() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 3);
        let top = b.label();
        b.sub(Reg::R1, Reg::R1, 1);
        b.bnz(Reg::R1, top);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.instr(2), Some(&Instr::Bnz { cond: Reg::R1, target: 1 }));
    }

    #[test]
    fn builder_forward_branch() {
        let mut b = ProgramBuilder::new();
        let done = b.new_label();
        b.li(Reg::R1, 0);
        b.beq(Reg::R1, Reg::R1, done);
        b.nop();
        b.bind(done);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.instr(1), Some(&Instr::Beq { a: Reg::R1, b: Reg::R1, target: 3 }));
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jmp(l);
        let err = b.build().unwrap_err();
        assert!(matches!(err, BuildError::UnboundLabel { id: 0 }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn from_instrs_validates_targets() {
        let err = Program::from_instrs(vec![Instr::Jmp { target: 9 }]).unwrap_err();
        assert!(matches!(err, BuildError::TargetOutOfRange { at: 0, target: 9, len: 1 }));
    }

    #[test]
    fn pc_assignment() {
        let mut b = ProgramBuilder::new();
        b.base_pc(0x4000);
        b.nop();
        b.nop();
        let p = b.build().unwrap();
        assert_eq!(p.pc_of(0), 0x4000);
        assert_eq!(p.pc_of(1), 0x4004);
    }

    #[test]
    fn display_round_trips_through_parse() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 4);
        let top = b.label();
        b.ld(Reg::R2, 0, Reg::R1);
        b.sub(Reg::R1, Reg::R1, 1);
        b.bnz(Reg::R1, top);
        b.halt();
        let p = b.build().unwrap();
        let text = p.to_string();
        let p2 = Program::parse(&text).unwrap();
        assert_eq!(p.instrs(), p2.instrs());
    }

    #[test]
    fn name_and_base_propagate() {
        let mut b = ProgramBuilder::new();
        b.name("demo").base_pc(0x100);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.name(), "demo");
        assert_eq!(p.base_pc(), 0x100);
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }
}
