//! # prefender-isa — a small RISC-like ISA
//!
//! The instruction set executed by `prefender-cpu` and *observed* by the
//! PREFENDER Scale Tracker. The paper's Table III defines dataflow-tracking
//! rules over exactly this vocabulary: immediate loads, memory loads,
//! addition/subtraction, multiplication/shifts, plus the `clflush`-style
//! flush and a cycle counter read that cache side-channel attacks need.
//!
//! Programs are built three ways:
//!
//! * directly as a `Vec<Instr>`,
//! * through [`ProgramBuilder`] (labels, loops, forward references),
//! * by assembling text with [`Program::parse`].
//!
//! ```
//! use prefender_isa::{Program, Reg};
//!
//! let p = Program::parse(
//!     "
//!     li   r1, 0x200
//!     li   r2, 5
//!     mul  r3, r2, r1      ; r3 = 5 * 0x200
//!     ld   r4, 0(r3)       ; load array[5 * 0x200]
//!     halt
//!     ",
//! ).unwrap();
//! assert_eq!(p.len(), 5);
//! assert!(p.to_string().contains("mul r3, r2, r1"));
//! # let _ = Reg::R0;
//! ```

mod asm;
mod instr;
mod program;
mod reg;

pub use asm::ParseError;
pub use instr::{Instr, Operand};
pub use program::{BuildError, Label, Program, ProgramBuilder};
pub use reg::{Reg, NUM_REGS};
