//! The workload catalog: one synthetic kernel mix per SPEC benchmark the
//! paper reports.

use prefender_cpu::Machine;
use prefender_isa::{Program, ProgramBuilder};

use crate::kernel::Kernel;

/// Which benchmark suite a workload substitutes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU 2006 (paper Tables IV/V, Figures 10–12).
    Spec2006,
    /// SPEC CPU 2017 (paper Table VI).
    Spec2017,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Spec2006 => f.write_str("SPEC CPU 2006"),
            Suite::Spec2017 => f.write_str("SPEC CPU 2017"),
        }
    }
}

/// A named synthetic workload: an ordered mix of [`Kernel`] phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    name: &'static str,
    suite: Suite,
    phases: Vec<Kernel>,
}

impl Workload {
    /// The benchmark this workload substitutes for (e.g. `"429.mcf"`).
    pub fn name(&self) -> &str {
        self.name
    }

    /// The suite it belongs to.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// The kernel phases, in execution order.
    pub fn phases(&self) -> &[Kernel] {
        &self.phases
    }

    /// Builds the complete program (phases concatenated, then `halt`).
    pub fn program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        b.name(self.name);
        for k in &self.phases {
            k.emit(&mut b);
        }
        b.halt();
        b.build().expect("catalog programs are statically correct")
    }

    /// All data memory initialization the phases need.
    pub fn data(&self) -> Vec<(u64, u64)> {
        self.phases.iter().flat_map(|k| k.data()).collect()
    }

    /// Installs program and data on core 0 of `m`.
    ///
    /// # Panics
    ///
    /// Panics if the machine has no cores (cannot happen for validated
    /// hierarchies).
    pub fn install(&self, m: &mut Machine) {
        for (a, v) in self.data() {
            m.write_data(a, v);
        }
        m.load_program(0, self.program());
    }
}

// Region plan: each phase gets disjoint 16 MB regions starting at 256 MB,
// far above the attack layout's addresses.
const R: u64 = 0x1000_0000;
const M16: u64 = 0x0100_0000;

fn region(k: u64) -> u64 {
    R + k * M16
}

/// The twelve SPEC CPU 2006 substitutes of the paper's Tables IV/V.
///
/// Mixes are chosen so each workload's *dominant idiom* matches what is
/// known about the benchmark's memory behaviour (see each entry's
/// comment), which is what makes the relative prefetcher results line up
/// with the paper's: who gains from Tagged vs. Stride vs. PREFENDER, who
/// is flat, and who regresses slightly.
pub fn spec2006() -> Vec<Workload> {
    vec![
        // Interpreter: pointer-heavy with some regular sweeps; everyone
        // gains a little.
        Workload {
            name: "400.perlbench",
            suite: Suite::Spec2006,
            phases: vec![
                Kernel::PointerChase {
                    base: region(0),
                    nodes: 1024,
                    span: 1 << 20,
                    steps: 1500,
                    seed: 400,
                    work: 90,
                },
                Kernel::Streaming { base: region(1), n: 600, stride: 64, work: 120 },
                Kernel::Compute { n: 1500 },
            ],
        },
        // Compression: regular multi-buffer passes with moderate PC count
        // (within the access-buffer budget) — every prefetcher helps.
        Workload {
            name: "401.bzip2",
            suite: Suite::Spec2006,
            phases: vec![
                Kernel::MultiStream {
                    base: region(0),
                    spacing: 0x10440,
                    streams: 12,
                    n: 160,
                    stride: 64,
                    work: 400,
                },
                Kernel::Streaming { base: region(8), n: 700, stride: 64, work: 150 },
            ],
        },
        // Network simplex: long-stride arc-array walks (stride-prefetcher
        // territory), scaled gathers (PREFENDER's edge on top of it) and
        // pointer chasing.
        Workload {
            name: "429.mcf",
            suite: Suite::Spec2006,
            phases: vec![
                Kernel::MultiStream {
                    base: region(0),
                    spacing: 0x10440,
                    streams: 48,
                    n: 140,
                    stride: 0x140,
                    work: 250,
                },
                Kernel::ScaledGather {
                    idx_base: region(8),
                    data_base: region(9),
                    n: 900,
                    scale: 0x180,
                    idx_span: 4096,
                    seed: 429,
                    work: 120,
                },
                Kernel::PointerChase {
                    base: region(10),
                    nodes: 1024,
                    span: 1 << 20,
                    steps: 900,
                    seed: 429,
                    work: 60,
                },
            ],
        },
        // Go playouts: essentially random board lookups — prefetching is
        // useless and PREFENDER's speculative lines cost a little.
        Workload {
            name: "445.gobmk",
            suite: Suite::Spec2006,
            phases: vec![
                Kernel::RandomAccess {
                    heap: region(1),
                    span: 1 << 21,
                    n: 1800,
                    seed: 445,
                    work: 150,
                },
                Kernel::Compute { n: 1800 },
            ],
        },
        // Profile HMM: a very regular blocked sweep, but over more
        // concurrent rows (distinct load PCs) than PREFENDER has access
        // buffers — Tagged/Stride win big, PREFENDER alone barely moves.
        Workload {
            name: "456.hmmer",
            suite: Suite::Spec2006,
            phases: vec![Kernel::MultiStream {
                base: region(0),
                spacing: 0x10440,
                streams: 72,
                n: 110,
                stride: 64,
                work: 700,
            }],
        },
        // Chess search: random transposition-table probes, compute-heavy;
        // slight regressions from useless prefetches.
        Workload {
            name: "458.sjeng",
            suite: Suite::Spec2006,
            phases: vec![
                Kernel::Compute { n: 2500 },
                Kernel::RandomAccess {
                    heap: region(1),
                    span: 1 << 21,
                    n: 1500,
                    seed: 458,
                    work: 350,
                },
            ],
        },
        // Quantum simulation: one long sequential sweep — everyone covers
        // it, PREFENDER slightly ahead when stacked on a basic prefetcher.
        Workload {
            name: "462.libquantum",
            suite: Suite::Spec2006,
            phases: vec![Kernel::Streaming { base: region(0), n: 2500, stride: 64, work: 450 }],
        },
        // Video encoder: stencil blocks with many reference streams.
        Workload {
            name: "464.h264ref",
            suite: Suite::Spec2006,
            phases: vec![
                Kernel::MultiStream {
                    base: region(0),
                    spacing: 0x10440,
                    streams: 60,
                    n: 90,
                    stride: 64,
                    work: 900,
                },
                Kernel::Compute { n: 1200 },
            ],
        },
        // Discrete-event simulator: almost pure pointer chasing — nobody
        // helps, nobody hurts much.
        Workload {
            name: "471.omnetpp",
            suite: Suite::Spec2006,
            phases: vec![Kernel::PointerChase {
                base: region(0),
                nodes: 4096,
                span: 1 << 22,
                steps: 4000,
                seed: 471,
                work: 80,
            }],
        },
        // Path search: pointer chasing with random map probes.
        Workload {
            name: "473.astar",
            suite: Suite::Spec2006,
            phases: vec![
                Kernel::PointerChase {
                    base: region(0),
                    nodes: 1024,
                    span: 1 << 20,
                    steps: 1500,
                    seed: 473,
                    work: 120,
                },
                Kernel::RandomAccess {
                    heap: region(2),
                    span: 1 << 20,
                    n: 1200,
                    seed: 473,
                    work: 180,
                },
            ],
        },
        // XSLT processor: wide regular DOM sweeps (Tagged's best case in
        // the paper) plus an indexable gather PREFENDER accelerates.
        Workload {
            name: "483.xalancbmk",
            suite: Suite::Spec2006,
            phases: vec![
                Kernel::MultiStream {
                    base: region(0),
                    spacing: 0x10440,
                    streams: 80,
                    n: 100,
                    stride: 64,
                    work: 500,
                },
                Kernel::ScaledGather {
                    idx_base: region(12),
                    data_base: region(13),
                    n: 700,
                    scale: 0x100,
                    idx_span: 4096,
                    seed: 483,
                    work: 150,
                },
            ],
        },
        // Random number generator: no memory at all.
        Workload {
            name: "999.specrand",
            suite: Suite::Spec2006,
            phases: vec![Kernel::Compute { n: 6000 }],
        },
    ]
}

/// The nine SPEC CPU 2017 substitutes of the paper's Table VI.
pub fn spec2017() -> Vec<Workload> {
    vec![
        // Numerical relativity: huge multi-field stencils — basic
        // prefetchers dominate, PREFENDER alone is modest.
        Workload {
            name: "507.cactuBSSN_r",
            suite: Suite::Spec2017,
            phases: vec![Kernel::MultiStream {
                base: region(0),
                spacing: 0x10440,
                streams: 72,
                n: 120,
                stride: 64,
                work: 450,
            }],
        },
        // Renderer: compute-dominated with small irregular touches.
        Workload {
            name: "526.blender_r",
            suite: Suite::Spec2017,
            phases: vec![
                Kernel::Compute { n: 4000 },
                Kernel::RandomAccess {
                    heap: region(1),
                    span: 1 << 18,
                    n: 500,
                    seed: 526,
                    work: 400,
                },
            ],
        },
        // Chess search (2017): like sjeng.
        Workload {
            name: "531.deepsjeng_r",
            suite: Suite::Spec2017,
            phases: vec![
                Kernel::Compute { n: 2500 },
                Kernel::RandomAccess {
                    heap: region(1),
                    span: 1 << 21,
                    n: 1500,
                    seed: 531,
                    work: 350,
                },
            ],
        },
        // Image processing: a handful of regular streams — few enough
        // load PCs that PREFENDER's Access Tracker covers them all by
        // itself (the paper: 5.7% alone, stride only 0.56%).
        Workload {
            name: "538.imagick_r",
            suite: Suite::Spec2017,
            phases: vec![
                Kernel::MultiStream {
                    base: region(0),
                    spacing: 0x10440,
                    streams: 10,
                    n: 250,
                    stride: 64,
                    work: 350,
                },
                Kernel::Stencil { a: region(11), b: region(12), n: 900, work: 200 },
            ],
        },
        // Go (2017): random lookups plus compute.
        Workload {
            name: "541.leela_r",
            suite: Suite::Spec2017,
            phases: vec![
                Kernel::RandomAccess {
                    heap: region(1),
                    span: 1 << 19,
                    n: 1200,
                    seed: 541,
                    work: 250,
                },
                Kernel::Compute { n: 2500 },
            ],
        },
        // LZMA: streaming with match-finder random probes.
        Workload {
            name: "557.xz_r",
            suite: Suite::Spec2017,
            phases: vec![
                Kernel::MultiStream {
                    base: region(0),
                    spacing: 0x10440,
                    streams: 64,
                    n: 90,
                    stride: 64,
                    work: 600,
                },
                Kernel::RandomAccess {
                    heap: region(9),
                    span: 1 << 20,
                    n: 900,
                    seed: 557,
                    work: 250,
                },
            ],
        },
        // Finite elements: dominated by scaled indirect gathers over a
        // huge matrix — the paper's standout PREFENDER win (~40-50%).
        Workload {
            name: "510.parest_r",
            suite: Suite::Spec2017,
            phases: vec![Kernel::ScaledGather {
                idx_base: region(0),
                data_base: region(1),
                n: 3500,
                scale: 0x200,
                idx_span: 8192,
                seed: 510,
                work: 60,
            }],
        },
        // Branch-heavy puzzle solver: pure compute.
        Workload {
            name: "548.exchange2_r",
            suite: Suite::Spec2017,
            phases: vec![Kernel::Compute { n: 6000 }],
        },
        // Ocean model: big regular stencil fields, more than the access
        // buffers can track — Tagged/Stride shine, PREFENDER alone ≈ 0.
        Workload {
            name: "554.roms_r",
            suite: Suite::Spec2017,
            phases: vec![Kernel::MultiStream {
                base: region(0),
                spacing: 0x10440,
                streams: 96,
                n: 110,
                stride: 64,
                work: 350,
            }],
        },
    ]
}

/// Every workload: SPEC 2006 then SPEC 2017.
pub fn all() -> Vec<Workload> {
    let mut v = spec2006();
    v.extend(spec2017());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_sim::HierarchyConfig;

    #[test]
    fn catalog_counts_match_paper() {
        assert_eq!(spec2006().len(), 12, "Tables IV/V report 12 benchmarks");
        assert_eq!(spec2017().len(), 9, "Table VI reports 9 benchmarks");
        assert_eq!(all().len(), 21);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = all().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn every_workload_builds_and_runs() {
        for w in all() {
            let mut m = Machine::new(HierarchyConfig::paper_baseline(1).unwrap());
            w.install(&mut m);
            let s = m.run();
            assert!(!s.truncated, "{} hit the instruction cap", w.name());
            assert!(s.instructions > 1000, "{} too small: {}", w.name(), s.instructions);
            assert!(s.cycles > 0);
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for w in all() {
            let run = || {
                let mut m = Machine::new(HierarchyConfig::paper_baseline(1).unwrap());
                w.install(&mut m);
                m.run().cycles
            };
            assert_eq!(run(), run(), "{} must be cycle-deterministic", w.name());
        }
    }

    #[test]
    fn specrand_has_no_memory_traffic() {
        let w = spec2006().into_iter().find(|w| w.name() == "999.specrand").unwrap();
        let mut m = Machine::new(HierarchyConfig::paper_baseline(1).unwrap());
        m.trace_mut().set_enabled(true);
        w.install(&mut m);
        m.run();
        assert!(m.trace().entries().is_empty());
    }

    #[test]
    fn suites_display() {
        assert_eq!(Suite::Spec2006.to_string(), "SPEC CPU 2006");
        assert_eq!(Suite::Spec2017.to_string(), "SPEC CPU 2017");
    }
}
