//! # prefender-workloads — synthetic SPEC CPU-like kernels
//!
//! The paper evaluates performance on SPEC CPU 2006 and 2017. Those
//! binaries and inputs cannot be redistributed, so this crate substitutes
//! *synthetic kernels*: one [`Workload`] per benchmark the paper reports,
//! each built from the dominant memory idiom of that benchmark —
//! streaming, large-stride walks, pointer chasing, random access,
//! *scaled indirect gathers* (the pattern PREFENDER's Scale Tracker
//! accelerates), stencils, blocked GEMM and compute-bound loops.
//!
//! The substitution preserves what the paper's Tables IV–VI actually
//! compare: *which prefetcher helps which access pattern, and by roughly
//! how much*. Absolute percentages differ from the paper's gem5+SPEC
//! numbers; EXPERIMENTS.md records both side by side.
//!
//! ```
//! use prefender_workloads::{spec2006, Workload};
//! use prefender_cpu::Machine;
//! use prefender_sim::HierarchyConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w: &Workload = &spec2006()[2];
//! assert_eq!(w.name(), "429.mcf");
//! let mut m = Machine::new(HierarchyConfig::paper_baseline(1)?);
//! w.install(&mut m);
//! let summary = m.run();
//! assert!(summary.instructions > 1000);
//! # Ok(())
//! # }
//! ```

mod catalog;
mod kernel;

pub use catalog::{all, spec2006, spec2017, Suite, Workload};
pub use kernel::Kernel;
