//! Kernel building blocks: one memory idiom each.

use prefender_isa::{ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One phase of a synthetic workload.
///
/// Each kernel emits a self-contained loop into a shared
/// [`ProgramBuilder`] and describes the data memory it needs. Register
/// usage is confined to `r1`–`r9` so phases compose freely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Kernel {
    /// `for i: acc += a[i]` — sequential loads at `stride` bytes.
    /// Tagged and stride prefetchers excel; models `462.libquantum`-style
    /// array sweeps.
    Streaming {
        /// Array base address.
        base: u64,
        /// Iterations (one load each).
        n: u64,
        /// Byte stride between loads.
        stride: u64,
        /// Compute cycles of dilution per iteration (real code does work
        /// between misses; without it every covered miss is a full
        /// memory-latency win and speedups inflate absurdly).
        work: u64,
    },
    /// `streams` parallel sequential walks advanced in lockstep, each
    /// through its *own load instruction*. The distinct-PC count is the
    /// knob that separates PC-indexed prefetchers (PREFENDER's Access
    /// Tracker, the stride prefetcher's table) from PC-blind ones
    /// (Tagged): with `streams` above the access-buffer count the AT
    /// thrashes while Tagged still covers everything — the
    /// `456.hmmer` / `554.roms_r` pattern in the paper's tables.
    MultiStream {
        /// First stream's base address.
        base: u64,
        /// Byte distance between stream bases.
        spacing: u64,
        /// Number of streams (= distinct load PCs per iteration).
        streams: usize,
        /// Iterations (each touches every stream once).
        n: u64,
        /// Per-iteration byte stride of every stream.
        stride: u64,
        /// Compute cycles of dilution per iteration.
        work: u64,
    },
    /// Linked-list traversal `p = *p` over a pseudo-random node chain —
    /// nothing prefetches this; models `471.omnetpp` / parts of `429.mcf`.
    PointerChase {
        /// First node address (line-aligned).
        base: u64,
        /// Nodes in the chain (cycle closes back to `base`).
        nodes: u64,
        /// Byte span the nodes are scattered over.
        span: u64,
        /// Traversal steps.
        steps: u64,
        /// Chain layout seed.
        seed: u64,
        /// Compute cycles of dilution per step.
        work: u64,
    },
    /// Uniform random loads with the target address computed by an
    /// in-program LCG — no side table to stream through, so *nothing*
    /// prefetches this and speculative prefetches are pure pollution;
    /// models `445.gobmk` / `458.sjeng` lookups.
    RandomAccess {
        /// Target heap base.
        heap: u64,
        /// Byte span of targets (must be a power of two).
        span: u64,
        /// Loads.
        n: u64,
        /// LCG seed.
        seed: u64,
        /// Compute cycles of dilution per load.
        work: u64,
    },
    /// Scaled indirect gather: `idx = a[i]; load b[idx * scale]` where
    /// consecutive `idx` values random-walk by ±1 — the Scale Tracker
    /// learns `scale` and prefetches `addr ± scale`, which is the next
    /// iteration's line. Models `510.parest_r`'s indirect FE access and
    /// the gather parts of `429.mcf` / `483.xalancbmk`.
    ScaledGather {
        /// Index array base.
        idx_base: u64,
        /// Data array base.
        data_base: u64,
        /// Gathers.
        n: u64,
        /// Byte scale applied to the loaded index (> line, < page).
        scale: u64,
        /// Maximum index value.
        idx_span: u64,
        /// Index walk seed.
        seed: u64,
        /// Compute cycles of dilution per gather.
        work: u64,
    },
    /// Three-point stencil `b[i] = a[i] + a[i+1] + a[i+2]` — streaming
    /// with reuse and a store stream; models `554.roms_r` /
    /// `507.cactuBSSN_r`.
    Stencil {
        /// Input array base.
        a: u64,
        /// Output array base.
        b: u64,
        /// Elements.
        n: u64,
        /// Compute cycles of dilution per element.
        work: u64,
    },
    /// Blocked matrix-multiply inner kernel: row-streaming loads from
    /// `a`, large-stride column loads from `b`; models `456.hmmer` /
    /// `538.imagick_r` regularity.
    Gemm {
        /// Row matrix base.
        a: u64,
        /// Column matrix base.
        b: u64,
        /// Accumulator output base.
        c: u64,
        /// Outer iterations.
        tiles: u64,
        /// Inner (dot-product) length.
        tile: u64,
        /// Column stride in bytes.
        row_stride: u64,
        /// Compute cycles of dilution per inner iteration.
        work: u64,
    },
    /// Pure ALU loop (integer hash mixing); models `999.specrand` /
    /// `548.exchange2_r`.
    Compute {
        /// Iterations (≈10 ALU ops each).
        n: u64,
    },
}

/// Emits a compute-dilution inner loop costing roughly `work` cycles
/// (3 instructions per inner iteration on `r24`/`r25`).
fn emit_work(b: &mut ProgramBuilder, work: u64) {
    if work == 0 {
        return;
    }
    let iters = (work / 3).max(1);
    b.li(Reg::R24, iters as i64);
    let top = b.label();
    b.add(Reg::R25, Reg::R25, 1);
    b.sub(Reg::R24, Reg::R24, 1);
    b.bnz(Reg::R24, top);
}

impl Kernel {
    /// Emits the kernel's loop into `b`.
    pub fn emit(&self, b: &mut ProgramBuilder) {
        match *self {
            Kernel::Streaming { base, n, stride, work } => {
                b.li(Reg::R1, base as i64);
                b.li(Reg::R2, n as i64);
                b.li(Reg::R3, 0);
                let top = b.label();
                b.ld(Reg::R4, 0, Reg::R1);
                b.add(Reg::R3, Reg::R3, Reg::R4);
                emit_work(b, work);
                b.add(Reg::R1, Reg::R1, stride as i64);
                b.sub(Reg::R2, Reg::R2, 1);
                b.bnz(Reg::R2, top);
            }
            Kernel::MultiStream { base, spacing, streams, n, stride, work } => {
                b.li(Reg::R1, 0); //             running offset
                b.li(Reg::R2, n as i64);
                b.li(Reg::R3, base as i64);
                let top = b.label();
                b.add(Reg::R4, Reg::R3, Reg::R1);
                for s in 0..streams {
                    // One load instruction (distinct PC) per stream.
                    b.ld(Reg::R5, (s as u64 * spacing) as i64, Reg::R4);
                }
                emit_work(b, work);
                b.add(Reg::R1, Reg::R1, stride as i64);
                b.sub(Reg::R2, Reg::R2, 1);
                b.bnz(Reg::R2, top);
            }
            Kernel::PointerChase { base, steps, work, .. } => {
                b.li(Reg::R1, base as i64);
                b.li(Reg::R2, steps as i64);
                let top = b.label();
                b.ld(Reg::R1, 0, Reg::R1);
                emit_work(b, work);
                b.sub(Reg::R2, Reg::R2, 1);
                b.bnz(Reg::R2, top);
            }
            Kernel::RandomAccess { heap, span, n, seed, work } => {
                assert!(span.is_power_of_two(), "random span must be a power of two");
                let line_mask = (span - 1) & !63; // line-aligned offset mask
                b.li(Reg::R1, seed as i64 | 1);
                b.li(Reg::R2, n as i64);
                b.li(Reg::R3, heap as i64);
                let top = b.label();
                // LCG state update, then offset = (state >> 24) & mask.
                b.mul(Reg::R1, Reg::R1, 6364136223846793005i64);
                b.add(Reg::R1, Reg::R1, 1442695040888963407i64);
                b.shr(Reg::R4, Reg::R1, 24);
                b.and(Reg::R4, Reg::R4, line_mask as i64);
                b.add(Reg::R4, Reg::R3, Reg::R4);
                b.ld(Reg::R5, 0, Reg::R4);
                emit_work(b, work);
                b.sub(Reg::R2, Reg::R2, 1);
                b.bnz(Reg::R2, top);
            }
            Kernel::ScaledGather { idx_base, data_base, n, scale, work, .. } => {
                b.li(Reg::R1, idx_base as i64);
                b.li(Reg::R2, n as i64);
                b.li(Reg::R3, data_base as i64);
                b.li(Reg::R5, scale as i64);
                let top = b.label();
                b.ld(Reg::R4, 0, Reg::R1); //  idx (variable to the ST)
                b.mul(Reg::R6, Reg::R4, Reg::R5); // sc = scale
                b.add(Reg::R6, Reg::R3, Reg::R6);
                b.ld(Reg::R7, 0, Reg::R6); //  the gather — ST prefetches ±scale
                emit_work(b, work);
                b.add(Reg::R1, Reg::R1, 8);
                b.sub(Reg::R2, Reg::R2, 1);
                b.bnz(Reg::R2, top);
            }
            Kernel::Stencil { a, b: out, n, work } => {
                b.li(Reg::R1, a as i64);
                b.li(Reg::R2, n as i64);
                b.li(Reg::R3, out as i64);
                let top = b.label();
                b.ld(Reg::R4, 0, Reg::R1);
                b.ld(Reg::R5, 8, Reg::R1);
                b.ld(Reg::R6, 16, Reg::R1);
                b.add(Reg::R4, Reg::R4, Reg::R5);
                b.add(Reg::R4, Reg::R4, Reg::R6);
                b.st(Reg::R4, 0, Reg::R3);
                emit_work(b, work);
                b.add(Reg::R1, Reg::R1, 8);
                b.add(Reg::R3, Reg::R3, 8);
                b.sub(Reg::R2, Reg::R2, 1);
                b.bnz(Reg::R2, top);
            }
            Kernel::Gemm { a, b: bb, c, tiles, tile, row_stride, work } => {
                b.li(Reg::R1, tiles as i64);
                b.li(Reg::R8, c as i64);
                let outer = b.label();
                b.li(Reg::R2, a as i64);
                b.li(Reg::R3, bb as i64);
                b.li(Reg::R4, tile as i64);
                b.li(Reg::R5, 0); // acc
                let inner = b.label();
                b.ld(Reg::R6, 0, Reg::R2);
                b.ld(Reg::R7, 0, Reg::R3);
                b.mul(Reg::R6, Reg::R6, Reg::R7);
                b.add(Reg::R5, Reg::R5, Reg::R6);
                emit_work(b, work);
                b.add(Reg::R2, Reg::R2, 8);
                b.add(Reg::R3, Reg::R3, row_stride as i64);
                b.sub(Reg::R4, Reg::R4, 1);
                b.bnz(Reg::R4, inner);
                b.st(Reg::R5, 0, Reg::R8);
                b.add(Reg::R8, Reg::R8, 8);
                b.sub(Reg::R1, Reg::R1, 1);
                b.bnz(Reg::R1, outer);
            }
            Kernel::Compute { n } => {
                b.li(Reg::R1, n as i64);
                b.li(Reg::R2, 0x9E37_79B9);
                b.li(Reg::R3, 0x85EB_CA6B);
                let top = b.label();
                b.mul(Reg::R2, Reg::R2, Reg::R3);
                b.xor(Reg::R2, Reg::R2, Reg::R3);
                b.shl(Reg::R4, Reg::R2, 13);
                b.add(Reg::R2, Reg::R2, Reg::R4);
                b.shr(Reg::R4, Reg::R2, 7);
                b.xor(Reg::R2, Reg::R2, Reg::R4);
                b.add(Reg::R3, Reg::R3, 1);
                b.sub(Reg::R1, Reg::R1, 1);
                b.bnz(Reg::R1, top);
            }
        }
    }

    /// The data memory this kernel needs: `(address, value)` pairs.
    pub fn data(&self) -> Vec<(u64, u64)> {
        match *self {
            Kernel::Streaming { .. }
            | Kernel::MultiStream { .. }
            | Kernel::Stencil { .. }
            | Kernel::Gemm { .. }
            | Kernel::Compute { .. } => {
                Vec::new() // values irrelevant; unwritten memory reads 0
            }
            Kernel::PointerChase { base, nodes, span, seed, .. } => {
                // Nodes live at `nodes` *distinct uniformly random* line
                // slots of the span (a partial Fisher-Yates draw — a
                // strided grid would alias cache sets and thrash).
                let mut rng = StdRng::seed_from_u64(seed);
                let slots = (span / 64).max(nodes);
                let mut all: Vec<u64> = (0..slots).collect();
                for i in 0..nodes as usize {
                    let j = rng.gen_range(i..all.len());
                    all.swap(i, j);
                }
                let mut pos: Vec<u64> = all[..nodes as usize].to_vec();
                let mut order: Vec<u64> = (0..nodes).collect();
                for i in (1..order.len()).rev() {
                    order.swap(i, rng.gen_range(0..=i));
                }
                // The chain visits nodes in `order`, closing the cycle;
                // the first hop starts at `base`, so node order[0]'s slot
                // is forced to 0.
                let first = order[0] as usize;
                let zero_at = pos.iter().position(|&p| p == 0);
                if let Some(z) = zero_at {
                    pos.swap(z, first);
                } else {
                    pos[first] = 0;
                }
                let addr_of = |k: usize| base + pos[k] * 64;
                let mut data = Vec::with_capacity(order.len());
                for w in 0..order.len() {
                    let cur = order[w] as usize;
                    let next = order[(w + 1) % order.len()] as usize;
                    data.push((addr_of(cur), addr_of(next)));
                }
                data
            }
            Kernel::RandomAccess { .. } => Vec::new(), // addresses come from the LCG
            Kernel::ScaledGather { idx_base, n, idx_span, seed, .. } => {
                // Indices random-walk by ±1 so `addr ± scale` (the Scale
                // Tracker's prediction) is usually the next gather target.
                let mut rng = StdRng::seed_from_u64(seed);
                let mut idx: i64 = (idx_span / 2) as i64;
                (0..n)
                    .map(|i| {
                        let step: i64 = if rng.gen_bool(0.5) { 1 } else { -1 };
                        idx = (idx + step).clamp(1, idx_span as i64 - 2);
                        (idx_base + i * 8, idx as u64)
                    })
                    .collect()
            }
        }
    }

    /// Short idiom name for stats output.
    pub fn idiom(&self) -> &'static str {
        match self {
            Kernel::Streaming { .. } => "streaming",
            Kernel::MultiStream { .. } => "multi-stream",
            Kernel::PointerChase { .. } => "pointer-chase",
            Kernel::RandomAccess { .. } => "random",
            Kernel::ScaledGather { .. } => "scaled-gather",
            Kernel::Stencil { .. } => "stencil",
            Kernel::Gemm { .. } => "gemm",
            Kernel::Compute { .. } => "compute",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefender_cpu::Machine;
    use prefender_isa::ProgramBuilder;
    use prefender_sim::HierarchyConfig;

    fn run(k: &Kernel) -> Machine {
        let mut b = ProgramBuilder::new();
        k.emit(&mut b);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(HierarchyConfig::paper_baseline(1).unwrap());
        for (a, v) in k.data() {
            m.write_data(a, v);
        }
        m.trace_mut().set_enabled(true);
        m.load_program(0, p);
        let s = m.run();
        assert!(!s.truncated);
        m
    }

    #[test]
    fn streaming_touches_sequential_lines() {
        let k = Kernel::Streaming { base: 0x100_0000, n: 64, stride: 64, work: 0 };
        let m = run(&k);
        let addrs: Vec<u64> = m.trace().entries().iter().map(|e| e.addr.raw()).collect();
        assert_eq!(addrs.len(), 64);
        assert_eq!(addrs[0], 0x100_0000);
        assert_eq!(addrs[63], 0x100_0000 + 63 * 64);
    }

    #[test]
    fn pointer_chase_cycles_through_all_nodes() {
        let k = Kernel::PointerChase {
            base: 0x200_0000,
            nodes: 32,
            span: 32 * 64 * 4,
            steps: 64,
            seed: 7,
            work: 0,
        };
        let m = run(&k);
        let addrs: Vec<u64> = m.trace().entries().iter().map(|e| e.addr.raw()).collect();
        assert_eq!(addrs.len(), 64);
        assert_eq!(addrs[0], 0x200_0000, "chain starts at base");
        // Two full cycles: the second 32 hops repeat the first 32.
        assert_eq!(&addrs[..32], &addrs[32..64]);
        let mut uniq = addrs[..32].to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 32, "all nodes visited once per cycle");
    }

    #[test]
    fn random_access_targets_are_in_span() {
        let k = Kernel::RandomAccess { heap: 0x400_0000, span: 1 << 16, n: 50, seed: 3, work: 0 };
        let m = run(&k);
        let targets: Vec<u64> = m.trace().entries().iter().map(|e| e.addr.raw()).collect();
        assert_eq!(targets.len(), 50);
        assert!(targets.iter().all(|a| (0x400_0000..0x400_0000 + (1 << 16)).contains(a)));
        assert!(targets.iter().all(|a| a % 64 == 0));
        // Genuinely scattered: many distinct lines.
        let mut uniq = targets.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 40, "only {} distinct lines", uniq.len());
    }

    #[test]
    fn scaled_gather_computes_scaled_addresses() {
        let k = Kernel::ScaledGather {
            idx_base: 0x500_0000,
            data_base: 0x600_0000,
            n: 40,
            scale: 0x200,
            idx_span: 128,
            seed: 11,
            work: 0,
        };
        let m = run(&k);
        let gathers: Vec<u64> =
            m.trace().entries().iter().map(|e| e.addr.raw()).filter(|a| *a >= 0x600_0000).collect();
        assert_eq!(gathers.len(), 40);
        for g in &gathers {
            assert_eq!((g - 0x600_0000) % 0x200, 0, "gather at a scale multiple");
        }
        // Consecutive gathers differ by exactly one scale (random ±1 walk).
        for w in gathers.windows(2) {
            assert_eq!(w[0].abs_diff(w[1]), 0x200);
        }
    }

    #[test]
    fn stencil_stores_sum() {
        let k = Kernel::Stencil { a: 0x700_0000, b: 0x800_0000, n: 8, work: 0 };
        let mut b = ProgramBuilder::new();
        k.emit(&mut b);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(HierarchyConfig::paper_baseline(1).unwrap());
        for i in 0..10u64 {
            m.write_data(0x700_0000 + i * 8, i);
        }
        m.load_program(0, p);
        m.run();
        // b[0] = a[0]+a[1]+a[2] = 3; b[7] = 7+8+9 = 24.
        assert_eq!(m.read_data(0x800_0000), 3);
        assert_eq!(m.read_data(0x800_0000 + 7 * 8), 24);
    }

    #[test]
    fn gemm_runs_expected_instruction_count() {
        let k = Kernel::Gemm {
            a: 0x900_0000,
            b: 0xA00_0000,
            c: 0xB00_0000,
            tiles: 4,
            tile: 8,
            row_stride: 0x400,
            work: 0,
        };
        let m = run(&k);
        // 2 loads per inner iteration.
        assert_eq!(
            m.trace()
                .entries()
                .iter()
                .filter(|e| e.kind == prefender_sim::AccessKind::Read)
                .count(),
            4 * 8 * 2
        );
    }

    #[test]
    fn compute_touches_no_data_memory() {
        let k = Kernel::Compute { n: 100 };
        let m = run(&k);
        assert!(m.trace().entries().is_empty());
    }

    #[test]
    fn data_is_deterministic() {
        let k = Kernel::ScaledGather {
            idx_base: 0x500_0000,
            data_base: 0x600_0000,
            n: 20,
            scale: 0x200,
            idx_span: 128,
            seed: 5,
            work: 0,
        };
        assert_eq!(k.data(), k.data());
    }

    #[test]
    fn idioms_named() {
        assert_eq!(Kernel::Compute { n: 1 }.idiom(), "compute");
        assert_eq!(Kernel::Streaming { base: 0, n: 1, stride: 64, work: 0 }.idiom(), "streaming");
    }
}
