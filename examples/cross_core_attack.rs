//! Cross-core Flush+Reload through the shared, inclusive L2 — the
//! paper's Figure 4, as a runnable demo.
//!
//! The attacker and victim run on different cores with private L1Ds; the
//! covert signal is the LLC-hit latency of the one line the victim
//! touched. PREFENDER instances sit at *each* L1D: the victim core's
//! Scale Tracker hides phase 2, the attacker core's Access Tracker
//! defeats phase 3.
//!
//! ```sh
//! cargo run --example cross_core_attack
//! ```

use prefender::{run_attack, AttackKind, AttackSpec, DefenseConfig};

fn main() -> Result<(), prefender::AttackError> {
    for (title, defense) in [
        ("undefended", DefenseConfig::None),
        ("Scale Tracker on the victim's core", DefenseConfig::St),
        ("Access Tracker on the attacker's core", DefenseConfig::At),
        ("full PREFENDER", DefenseConfig::Full),
    ] {
        let spec = AttackSpec::new(AttackKind::FlushReload, defense).cross_core(true);
        let o = run_attack(&spec)?;
        println!("== cross-core Flush+Reload, {title} ==");
        // Bucket the probe latencies: memory miss vs LLC hit vs L1 hit.
        let (mem, llc): (Vec<&prefender::attacks::ProbeSample>, Vec<_>) =
            o.samples.iter().partition(|s| s.latency >= o.threshold);
        println!(
            "  {} probes missed to memory, {} hit in cache; anomalies {:?} -> {}",
            mem.len(),
            llc.len(),
            o.anomalies,
            if o.leaked { "SECRET LEAKED" } else { "attack defeated" }
        );
        for s in llc {
            println!("    index {:>3} hit in {} cycles", s.index, s.latency);
        }
        println!();
    }
    Ok(())
}
