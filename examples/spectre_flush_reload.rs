//! A Spectre-style Flush+Reload attack, undefended and defended — the
//! paper's Figure 8(a)/(j) as a runnable demo.
//!
//! ```sh
//! cargo run --example spectre_flush_reload
//! ```

use prefender::{run_attack, AttackKind, AttackSpec, DefenseConfig, NoiseSpec};

fn show(title: &str, spec: &AttackSpec) -> Result<(), prefender::AttackError> {
    let o = run_attack(spec)?;
    println!("\n== {title} ==");
    println!("probe latencies (array index: cycles):");
    for chunk in o.samples.chunks(8) {
        let row: Vec<String> =
            chunk.iter().map(|s| format!("{:>3}:{:<4}", s.index, s.latency)).collect();
        println!("  {}", row.join(" "));
    }
    println!(
        "attacker sees {} anomalous indices {:?} -> {}",
        o.anomalies.len(),
        o.anomalies,
        if o.leaked { "SECRET LEAKED" } else { "attack defeated" }
    );
    Ok(())
}

fn main() -> Result<(), prefender::AttackError> {
    // Phase 1: the attacker flushes the victim array's eviction set.
    // Phase 2: the victim loads array[secret * 0x200] (secret = 65).
    // Phase 3: the attacker reloads every line and times it.
    show(
        "no defense: the single cache hit reveals secret = 65",
        &AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None),
    )?;

    show(
        "Scale Tracker: neighbours 64/66 prefetched, three candidates now",
        &AttackSpec::new(AttackKind::FlushReload, DefenseConfig::St),
    )?;

    show(
        "Access Tracker: the probe loop itself is predicted and prefetched",
        &AttackSpec::new(AttackKind::FlushReload, DefenseConfig::At),
    )?;

    show(
        "full PREFENDER under noisy instructions AND noisy accesses (C3+C4)",
        &AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full).with_noise(NoiseSpec::C3C4),
    )?;
    Ok(())
}
