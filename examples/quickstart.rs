//! Quickstart: build a machine, attach PREFENDER, run a program, read the
//! timing — the five-minute tour of the public API.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use prefender::{HierarchyConfig, Machine, Prefender, Program, Reg, StridePrefetcher};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's baseline hierarchy: 32 KB L1I + 64 KB L1D per core,
    //    2 MB shared L2, 64-byte lines, 4 MSHRs.
    let mut machine = Machine::new(HierarchyConfig::paper_baseline(1)?);

    // 2. Attach the full PREFENDER (ST + AT + RP) with a Stride basic
    //    prefetcher underneath — the paper's Table V column 10 setup.
    let prefender = Prefender::builder(64, 4096)
        .access_buffers(32)
        .basic(Box::new(StridePrefetcher::default_config()))
        .build();
    machine.set_prefetcher(0, Box::new(prefender));

    // 3. Assemble a program. This one walks an array the way a victim's
    //    secret-dependent load would: address = base + secret * 0x200.
    let program = Program::parse(
        "
        li   r0, 0x2000        ; &secret
        ld   r1, 0(r0)         ; r1 = secret (a variable, to the ST)
        li   r2, 0x100000      ; array base
        li   r3, 0x200         ; the scale
        mul  r4, r1, r3
        add  r5, r2, r4
        ld   r6, 0(r5)         ; the secret-dependent access
        halt
        ",
    )?;
    machine.write_data(0x2000, 42); // the secret
    machine.trace_mut().set_enabled(true);
    machine.load_program(0, program);

    // 4. Run and inspect.
    let summary = machine.run();
    println!("ran: {summary}");
    println!("loaded array[secret*0x200] where secret = {}", machine.core(0).regs().read(Reg::R1));

    for entry in machine.trace().entries() {
        println!(
            "  load @ pc {:#x}: addr {} took {} cycles ({})",
            entry.pc, entry.addr, entry.latency, entry.served_by
        );
    }

    // 5. The Scale Tracker learned the 0x200 scale from dataflow and
    //    prefetched the neighbouring eviction cachelines — the lines an
    //    attacker would need to tell secret 41/42/43 apart.
    let secret_line = 0x100000 + 42 * 0x200u64;
    for delta in [-0x200i64, 0, 0x200] {
        let addr = prefender::Addr::new((secret_line as i64 + delta) as u64);
        println!("  line {addr}: in L1D = {}", machine.mem().probe_l1d(0, addr));
    }
    Ok(())
}
