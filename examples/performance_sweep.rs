//! Performance sweep: run the synthetic SPEC-like workloads under every
//! prefetcher and print a Table IV-style speedup summary — the
//! performance half of the paper's claim ("security *and* performance").
//!
//! ```sh
//! cargo run --release --example performance_sweep
//! ```

use prefender::stats::{speedup_pct, Table};
use prefender::{
    spec2006, HierarchyConfig, Machine, Prefender, Prefetcher, StridePrefetcher, TaggedPrefetcher,
    Workload,
};

fn run_once(w: &Workload, prefetcher: Option<Box<dyn Prefetcher>>) -> u64 {
    let mut m = Machine::new(HierarchyConfig::paper_baseline(1).expect("valid baseline"));
    if let Some(p) = prefetcher {
        m.set_prefetcher(0, p);
    }
    w.install(&mut m);
    m.run().cycles
}

type BuildFn = fn() -> Box<dyn Prefetcher>;

fn main() {
    let configs: Vec<(&str, BuildFn)> = vec![
        ("Tagged", || Box::new(TaggedPrefetcher::new(64, 1))),
        ("Stride", || Box::new(StridePrefetcher::default_config())),
        ("Prefender", || Box::new(Prefender::builder(64, 4096).build())),
        ("Prefender(Stride)", || {
            Box::new(
                Prefender::builder(64, 4096)
                    .basic(Box::new(StridePrefetcher::default_config()))
                    .build(),
            )
        }),
    ];

    let mut headers = vec!["Benchmark".to_string(), "Base cycles".to_string()];
    headers.extend(configs.iter().map(|(n, _)| n.to_string()));
    let mut table = Table::new(headers);

    for w in spec2006() {
        let base = run_once(&w, None);
        let mut cells = vec![w.name().to_string(), base.to_string()];
        for (_, build) in &configs {
            let cycles = run_once(&w, Some(build()));
            cells.push(format!("{:+.2}%", speedup_pct(base as f64, cycles as f64)));
        }
        table.row(cells);
    }
    println!("{table}");
    println!("(speedup vs. a machine with no prefetcher; positive = faster)");
}
