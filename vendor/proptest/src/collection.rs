//! Collection strategies.

use crate::{Strategy, TestRng};

/// A strategy for `Vec<S::Value>` with length drawn from `len`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

/// Length specifications accepted by [`vec`].
pub trait SizeRange {
    /// `(min, max_exclusive)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

/// Generates vectors of `element` draws with length in `len`.
pub fn vec<S: Strategy>(element: S, len: impl SizeRange) -> VecStrategy<S> {
    let (min, max_exclusive) = len.bounds();
    assert!(min < max_exclusive, "empty length range in collection::vec");
    VecStrategy { element, min, max_exclusive }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.max_exclusive - self.min;
        let n = self.min + if span > 1 { rng.below(span) } else { 0 };
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}
