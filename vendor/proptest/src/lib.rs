//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no registry access, so this workspace vendors
//! the API subset the repo's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for integer ranges, tuples
//!   (arity 2–4), [`Just`] and [`BoxedStrategy`];
//! * [`collection::vec`] for variable-length vectors;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`ProptestConfig`] (`with_cases` only).
//!
//! Differences from upstream: generation is seeded deterministically from
//! the test name (every run explores the same cases — reproducible CI),
//! and there is **no shrinking**: a failing case reports its case index
//! and message, not a minimized input.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

pub mod collection;

/// The generator handed to strategies (a seeded [`StdRng`]).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform draw below `n`.
    pub fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }
}

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Generates values of one type.
///
/// Unlike upstream there is no value tree: a strategy is just a cloneable
/// deterministic sampler.
pub trait Strategy: Clone + 'static {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone + 'static,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| s.gen_value(rng)))
    }
}

/// Always produces a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone + 'static,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("options", &self.options.len()).finish()
    }
}

impl<T> Union<T> {
    /// Builds the union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len());
        self.options[k].gen_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $idx:tt),+)),+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the shim trades a little coverage for
        // suite latency while staying well above smoke level.
        ProptestConfig { cases: 64 }
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drives one property: `cases` deterministic draws seeded from `name`.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first case whose body
/// returns a [`TestCaseError`].
pub fn run_cases<F>(cfg: ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    for case in 0..cfg.cases {
        let mut rng = TestRng(StdRng::seed_from_u64(
            base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ));
        if let Err(TestCaseError(msg)) = body(&mut rng) {
            panic!("property `{name}` failed at case {case}/{}: {msg}", cfg.cases);
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(__cfg, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::gen_value(&($strat), __rng);)+
                    // The immediate closure call turns `return`-style
                    // prop_assert! early exits into a Result.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __result
                });
            }
        )*
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)*),
                a,
                b
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_maps_compose(v in prop::collection::vec((0u8..4).prop_map(|b| b * 2), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|b| b % 2 == 0 && *b < 8));
        }

        #[test]
        fn oneof_picks_every_arm(x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_attribute_parses(x in 0u8..=255) {
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        crate::run_cases(ProptestConfig::with_cases(3), "always_fails", |_| {
            Err(TestCaseError("boom".into()))
        });
    }
}
