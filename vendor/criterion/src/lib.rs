//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so this workspace vendors
//! the API subset the repo's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it runs each benchmark for
//! a fixed, small iteration budget and prints the mean wall-clock time per
//! iteration — a smoke-level signal, deterministic in shape, fast enough
//! for CI. Set `CRITERION_SHIM_ITERS` to raise the budget.

use std::fmt::{self, Display};
use std::time::Instant;

/// Prevents the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn iteration_budget() -> u64 {
    std::env::var("CRITERION_SHIM_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(10)
}

/// The benchmark driver handed to every registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_owned() }
    }
}

/// Runs the timed closure and reports per-iteration time.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    label: String,
}

impl Bencher {
    /// Times `f` over the iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call so first-touch effects don't dominate.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let per_iter = start.elapsed() / self.iters.max(1) as u32;
        println!("{:<60} {:>12.3?}/iter ({} iters)", self.label, per_iter, self.iters);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher { iters: iteration_budget(), label: label.to_owned() };
    f(&mut b);
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and parameter value.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Registers bench functions under a group name (shim: plain fn list).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
