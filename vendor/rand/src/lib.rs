//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *API subset* the repository actually uses — seeded deterministic
//! generation only:
//!
//! * [`SeedableRng::seed_from_u64`] + [`rngs::StdRng`] (xoshiro256\*\*
//!   seeded through SplitMix64 — **not** the upstream ChaCha12 stream, so
//!   sequences differ from real `rand`, but every consumer in this repo
//!   only relies on determinism and uniformity, never on exact values);
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges;
//! * [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Everything is rejection-sampled, so draws are exactly uniform and the
//! stream consumed per call is data-independent in the common case.

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        // 53 uniform mantissa bits, the same construction real rand uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `[0, span)` by rejection; `span > 0`.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64, minus one: accept-zone.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let v: usize = rng.gen_range(0..=5);
            assert!(v <= 5);
            let v: i64 = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads} heads of 10000");
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..64).collect();
        let mut rng = StdRng::seed_from_u64(4);
        v.shuffle(&mut rng);
        assert_ne!(v, (0..64).collect::<Vec<_>>(), "a 64-element shuffle is not identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }
}
