//! Sequence-related sampling.

use crate::{Rng, RngCore};

/// Randomized operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
