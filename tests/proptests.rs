//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use prefender::core::{AccessTracker, AtConfig, CalculationBuffer, RecordProtector, RpConfig};
use prefender::isa::{Instr, Operand, Program, Reg};
use prefender::sim::{AccessKind, Addr, Cache, CacheConfig, Cycle, MshrFile};

// ---------- ISA: assembler/disassembler ----------

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).expect("in range"))
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![arb_reg().prop_map(Operand::Reg), (-0x10000i64..0x10000).prop_map(Operand::Imm)]
}

fn arb_linear_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), -0x10_0000i64..0x10_0000).prop_map(|(rd, imm)| Instr::LoadImm { rd, imm }),
        (arb_reg(), arb_reg(), -4096i64..4096).prop_map(|(rd, base, offset)| Instr::Load {
            rd,
            base,
            offset
        }),
        (arb_reg(), arb_reg(), -4096i64..4096).prop_map(|(src, base, offset)| Instr::Store {
            src,
            base,
            offset
        }),
        (arb_reg(), arb_reg(), arb_operand()).prop_map(|(rd, a, b)| Instr::Add { rd, a, b }),
        (arb_reg(), arb_reg(), arb_operand()).prop_map(|(rd, a, b)| Instr::Sub { rd, a, b }),
        (arb_reg(), arb_reg(), arb_operand()).prop_map(|(rd, a, b)| Instr::Mul { rd, a, b }),
        (arb_reg(), arb_reg(), arb_operand()).prop_map(|(rd, a, b)| Instr::Shl { rd, a, b }),
        (arb_reg(), arb_reg(), arb_operand()).prop_map(|(rd, a, b)| Instr::Shr { rd, a, b }),
        (arb_reg(), arb_reg(), arb_operand()).prop_map(|(rd, a, b)| Instr::And { rd, a, b }),
        (arb_reg(), arb_reg(), arb_operand()).prop_map(|(rd, a, b)| Instr::Or { rd, a, b }),
        (arb_reg(), arb_reg(), arb_operand()).prop_map(|(rd, a, b)| Instr::Xor { rd, a, b }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::Mov { rd, rs }),
        (arb_reg(), -4096i64..4096).prop_map(|(base, offset)| Instr::Flush { base, offset }),
        arb_reg().prop_map(|rd| Instr::Rdtsc { rd }),
        Just(Instr::Nop),
        Just(Instr::Halt),
    ]
}

proptest! {
    /// Disassembling then re-assembling any straight-line program yields
    /// the identical instruction sequence.
    #[test]
    fn asm_round_trip(instrs in prop::collection::vec(arb_linear_instr(), 1..40)) {
        let p = Program::from_instrs(instrs).expect("no branches, always valid");
        let text = p.to_string();
        let p2 = Program::parse(&text).expect("disassembly must re-assemble");
        prop_assert_eq!(p.instrs(), p2.instrs());
    }

    /// The calculation buffer never tracks a non-positive scale, and a
    /// register with a valid fixed value never carries a usable scale
    /// larger than 1 needing prefetch (constants cannot select lines).
    #[test]
    fn calc_buffer_scale_invariants(instrs in prop::collection::vec(arb_linear_instr(), 0..200)) {
        let mut buf = CalculationBuffer::new();
        for i in &instrs {
            buf.apply(i);
            for r in Reg::all() {
                let t = buf.get(r);
                if let Some(sc) = t.sc {
                    prop_assert!(sc > 0, "{r}: non-positive scale {sc} after {i}");
                }
            }
        }
    }

    /// `mov` always copies the tracked state verbatim.
    #[test]
    fn calc_buffer_mov_copies(instrs in prop::collection::vec(arb_linear_instr(), 0..60),
                              src in arb_reg(), dst in arb_reg()) {
        let mut buf = CalculationBuffer::new();
        for i in &instrs {
            buf.apply(i);
        }
        let before = buf.get(src);
        buf.apply(&Instr::Mov { rd: dst, rs: src });
        prop_assert_eq!(buf.get(dst), before);
    }
}

// ---------- Access Tracker: DiffMin is the true pairwise minimum ----------

proptest! {
    #[test]
    fn diffmin_is_brute_force_minimum(blocks in prop::collection::vec(0u64..256, 1..20)) {
        let mut at = AccessTracker::new(AtConfig::paper());
        let mut decision = None;
        for (k, b) in blocks.iter().enumerate() {
            let blk = Addr::new(0x10_0000 + b * 64);
            decision = Some(at.on_load(0x8000, blk, Cycle::new(k as u64), None, &|_| false));
        }
        let buf = at.buffer(decision.unwrap().buffer.unwrap());
        // Brute-force expectation over the *recorded* blocks (the buffer
        // holds at most 8 after LRU eviction).
        let recorded: Vec<u64> = buf.blocks().collect();
        let mut expect = None;
        for i in 0..recorded.len() {
            for j in (i + 1)..recorded.len() {
                let d = recorded[i].abs_diff(recorded[j]);
                if d != 0 {
                    expect = Some(expect.map_or(d, |m: u64| m.min(d)));
                }
            }
        }
        prop_assert_eq!(buf.diffmin(), expect);
    }

    /// The tracker never prefetches a line that is already recorded in
    /// the activated buffer or resident in the cache.
    #[test]
    fn at_never_prefetches_recorded_or_resident(blocks in prop::collection::vec(0u64..64, 4..30)) {
        let mut at = AccessTracker::new(AtConfig::paper());
        let resident = |a: Addr| a.raw().is_multiple_of(128); // arbitrary residency rule
        for (k, b) in blocks.iter().enumerate() {
            let blk = Addr::new(0x10_0000 + b * 64);
            let d = at.on_load(0x8000, blk, Cycle::new(k as u64), None, &resident);
            if let Some((addr, _)) = d.prefetch {
                prop_assert!(!resident(addr), "prefetched a resident line {addr}");
                let buf = at.buffer(d.buffer.unwrap());
                prop_assert!(!buf.blocks().any(|b| b == addr.raw()), "prefetched a recorded line");
            }
        }
    }
}

// ---------- Record Protector: pattern algebra ----------

proptest! {
    /// After recording (sc, blk), every address blk + k·sc hits, and the
    /// replacement rule keeps the *sparser* of two related patterns.
    #[test]
    fn rp_pattern_membership(sc_idx in 0usize..4, blk in 0u64..1000, k in -50i64..50) {
        let scales = [0x80u64, 0x100, 0x200, 0x400];
        let sc = scales[sc_idx];
        let blk = 0x100_0000 + blk * 64;
        let mut rp = RecordProtector::new(RpConfig::paper());
        rp.record(sc, blk, Cycle::ZERO);
        let member = (blk as i64 + k * sc as i64).max(0) as u64;
        prop_assert_eq!(rp.hit(member), Some((sc, blk)));
    }

    #[test]
    fn rp_subset_keeps_sparser(base in 0u64..100, mult in 1u64..8) {
        // Pattern A: sc, pattern B: sc*mult with matching phase — B ⊂ A.
        let sc = 0x100u64;
        let blk = 0x100_0000 + base * sc;
        let mut rp = RecordProtector::new(RpConfig::paper());
        rp.record(sc, blk, Cycle::ZERO);
        rp.record(sc * mult, blk, Cycle::ZERO);
        let entries = rp.entries();
        prop_assert_eq!(entries.len(), 1, "related patterns must merge");
        prop_assert_eq!(entries[0].sc, sc * mult.max(1));
    }
}

// ---------- Cache: structural invariants ----------

proptest! {
    /// Occupancy never exceeds capacity, and a filled line is always
    /// findable until evicted or invalidated.
    #[test]
    fn cache_occupancy_bounded(ops in prop::collection::vec((0u64..512, 0u8..3), 1..200)) {
        let cfg = CacheConfig::new("T", 4096, 2, 64, 4).expect("valid");
        let capacity = 4096 / 64;
        let mut c = Cache::new(cfg);
        for (k, (line, op)) in ops.iter().enumerate() {
            let addr = Addr::new(line * 64);
            let now = Cycle::new(k as u64);
            match op {
                0 => {
                    c.fill(addr, now, None, false);
                    prop_assert!(c.contains(addr));
                }
                1 => {
                    c.invalidate(addr);
                    prop_assert!(!c.contains(addr));
                }
                _ => {
                    c.demand_lookup(addr, now);
                }
            }
            prop_assert!(c.occupancy() <= capacity);
        }
    }

    /// The MSHR file never reports more outstanding entries than its
    /// capacity, and completion times never move backwards for merges.
    #[test]
    fn mshr_invariants(reqs in prop::collection::vec((0u64..16, 1u64..50), 1..100)) {
        let mut m = MshrFile::new(4, 20);
        let mut now = Cycle::ZERO;
        for (line, gap) in reqs {
            now += gap;
            let out = m.request(line * 64, now, 200);
            prop_assert!(out.ready_at() > now);
            prop_assert!(m.occupancy(now) <= 4);
        }
    }
}

// ---------- Machine: determinism over arbitrary linear programs ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn machine_is_deterministic(instrs in prop::collection::vec(arb_linear_instr(), 1..60)) {
        use prefender::{HierarchyConfig, Machine};
        let p = Program::from_instrs(instrs).expect("linear program");
        let run = || {
            let mut m = Machine::new(HierarchyConfig::paper_baseline(1).expect("valid"));
            m.load_program(0, p.clone());
            let s = m.run();
            (s.cycles, s.instructions, m.core(0).regs().clone())
        };
        prop_assert_eq!(run(), run());
    }

    /// Flushing a line always forces the next access to memory, no matter
    /// what happened before.
    #[test]
    fn flush_always_forces_memory(lines in prop::collection::vec(0u64..64, 1..30), victim in 0u64..64) {
        use prefender::{HierarchyConfig, MemorySystem};
        let mut mem = MemorySystem::new(HierarchyConfig::paper_baseline(1).expect("valid"));
        let mut now = Cycle::ZERO;
        for l in lines {
            mem.access(0, Addr::new(0x10_0000 + l * 64), AccessKind::Read, now);
            now += 300;
        }
        let target = Addr::new(0x10_0000 + victim * 64);
        mem.flush(target, now);
        now += 300;
        let out = mem.access(0, target, AccessKind::Read, now);
        prop_assert_eq!(out.served_by, prefender::sim::Level::Memory);
    }
}
