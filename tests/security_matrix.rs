//! The paper's Table II, as executable claims: PREFENDER's security
//! properties across attack families, challenge noise and core scopes.

use prefender::{run_attack, AttackKind, AttackSpec, DefenseConfig, NoiseSpec};

fn defended(spec: &AttackSpec) -> bool {
    !run_attack(spec).expect("attack run").leaked
}

/// Table II row: "Flush+Reload / Multi-Cacheline ✓".
#[test]
fn defends_multi_cacheline_flush_reload() {
    assert!(defended(&AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full)));
}

/// Table II row: "Evict+Reload / Multi-Cacheline ✓".
#[test]
fn defends_multi_cacheline_evict_reload() {
    assert!(defended(&AttackSpec::new(AttackKind::EvictReload, DefenseConfig::Full)));
}

/// Table II row: "Prime+Probe / Multi-Cacheset ✓".
#[test]
fn defends_multi_cacheset_prime_probe() {
    assert!(defended(&AttackSpec::new(AttackKind::PrimeProbe, DefenseConfig::Full)));
}

/// Table II row: "Single-Core ✓" — every attack family, same core.
#[test]
fn defends_single_core_attacks() {
    for kind in [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe] {
        assert!(
            defended(&AttackSpec::new(kind, DefenseConfig::Full)),
            "single-core {kind} not defended"
        );
    }
}

/// Table II row: "Cross-Core ✓" (paper Figure 4).
#[test]
fn defends_cross_core_attacks() {
    for kind in [AttackKind::FlushReload, AttackKind::EvictReload] {
        assert!(
            defended(&AttackSpec::new(kind, DefenseConfig::Full).cross_core(true)),
            "cross-core {kind} not defended"
        );
    }
    // Cross-core Prime+Probe is defended by the Access Tracker.
    assert!(defended(
        &AttackSpec::new(AttackKind::PrimeProbe, DefenseConfig::At).cross_core(true)
    ));
}

/// Table II row: "Considering Random Access Pattern ✓" — probe order is
/// shuffled in every reload run; different shuffles must not re-enable
/// the leak.
#[test]
fn defends_under_any_probe_order() {
    for seed in [1u64, 7, 42, 1234, 0xDEAD] {
        let spec =
            AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full).with_seed(seed);
        assert!(defended(&spec), "leaked under probe order seed {seed}");
    }
}

/// Table II row: "Handling Benign Noise Accesses ✓" — challenges C3/C4.
#[test]
fn defends_under_benign_noise() {
    for noise in [NoiseSpec::C3, NoiseSpec::C4, NoiseSpec::C3C4] {
        for kind in [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe] {
            assert!(
                defended(&AttackSpec::new(kind, DefenseConfig::Full).with_noise(noise)),
                "{kind} with noise {noise:?} not defended"
            );
        }
    }
}

/// The threat model sanity half: every attack actually *works* when
/// nothing defends — otherwise the defense claims above are vacuous.
#[test]
fn undefended_attacks_genuinely_leak() {
    for kind in [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe] {
        for cross in [false, true] {
            let spec = AttackSpec::new(kind, DefenseConfig::None).cross_core(cross);
            let o = run_attack(&spec).expect("attack run");
            assert!(o.leaked, "{kind} cross={cross} failed to leak undefended");
            assert_eq!(o.anomalies, vec![65], "{kind} cross={cross}");
        }
    }
}

/// "No Software Modification ✓": the defense is configured purely at the
/// hardware model; the victim and attacker programs are byte-identical
/// between the defended and undefended runs. (This is structural in the
/// runner — both runs build from the same spec fields — so we assert the
/// spec carries no program-altering defense state.)
#[test]
fn defense_requires_no_program_changes() {
    let a = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
    let b = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full);
    assert_eq!(a.kind, b.kind);
    assert_eq!(a.noise, b.noise);
    assert_eq!(a.layout, b.layout);
    assert_eq!(a.seed, b.seed);
}

/// Defense granularity is the cacheline: the ST's misleading prefetches
/// land exactly one probe-stride away — adjacent eviction *cachelines*,
/// not whole sets or pages.
#[test]
fn defense_granularity_is_cacheline() {
    let o = run_attack(&AttackSpec::new(AttackKind::FlushReload, DefenseConfig::St))
        .expect("attack run");
    assert_eq!(o.anomalies, vec![64, 65, 66]);
}
