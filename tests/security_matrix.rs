//! The paper's Table II, as executable claims: PREFENDER's security
//! properties across attack families, challenge noise and core scopes —
//! driven through the sweep engine.
//!
//! One campaign covers the whole matrix: every attack case (all three
//! families × four challenge sets × single/cross core) under no defense
//! and under the full PREFENDER, sharded across four worker threads. The
//! per-row tests below query the shared campaign by scenario id.

use std::sync::OnceLock;

use prefender::sweep::{
    run_sweep, AttackCase, AttackKind, DefenseConfig, DefensePoint, SweepGrid, SweepOptions,
    SweepReport,
};
use prefender::{run_attack, AttackSpec, NoiseSpec};

fn campaign() -> &'static SweepReport {
    static CAMPAIGN: OnceLock<SweepReport> = OnceLock::new();
    CAMPAIGN.get_or_init(|| {
        let grid = SweepGrid {
            attacks: AttackCase::all(),
            defenses: vec![
                DefensePoint::new(DefenseConfig::None),
                DefensePoint::new(DefenseConfig::At),
                DefensePoint::new(DefenseConfig::Full),
            ],
            ..SweepGrid::empty()
        };
        run_sweep(&grid, &SweepOptions { threads: 4, campaign_seed: 0xC0FFEE })
    })
}

/// Looks up one matrix cell by its scenario-id fragments.
fn leaked(case_tag: &str, defense_tag: &str) -> bool {
    let id = format!("atk:{case_tag}/{defense_tag}/none/paper/s0");
    campaign()
        .by_id(&id)
        .unwrap_or_else(|| panic!("campaign is missing scenario {id}"))
        .leaked
        .expect("attack scenarios carry a verdict")
}

/// Table II row: "Flush+Reload / Multi-Cacheline ✓".
#[test]
fn defends_multi_cacheline_flush_reload() {
    assert!(!leaked("fr", "full32"));
}

/// Table II row: "Evict+Reload / Multi-Cacheline ✓".
#[test]
fn defends_multi_cacheline_evict_reload() {
    assert!(!leaked("er", "full32"));
}

/// Table II row: "Prime+Probe / Multi-Cacheset ✓".
#[test]
fn defends_multi_cacheset_prime_probe() {
    assert!(!leaked("pp", "full32"));
}

/// Table II row: "Single-Core ✓" — every attack family, same core.
#[test]
fn defends_single_core_attacks() {
    for kind in ["fr", "er", "pp"] {
        assert!(!leaked(kind, "full32"), "single-core {kind} not defended");
    }
}

/// Table II row: "Cross-Core ✓" (paper Figure 4).
#[test]
fn defends_cross_core_attacks() {
    for kind in ["fr", "er"] {
        assert!(!leaked(&format!("{kind}x"), "full32"), "cross-core {kind} not defended");
    }
    // Cross-core Prime+Probe is defended by the Access Tracker.
    assert!(!leaked("ppx", "at32"));
}

/// Table II row: "Considering Random Access Pattern ✓" — probe order is
/// shuffled in every reload run; different shuffles must not re-enable
/// the leak. Each campaign seed derives a different probe order for the
/// same grid, so five campaigns cover five distinct orders.
#[test]
fn defends_under_any_probe_order() {
    let grid = SweepGrid {
        attacks: vec![AttackCase {
            kind: AttackKind::FlushReload,
            noise: NoiseSpec::NONE,
            cross_core: false,
        }],
        defenses: vec![DefensePoint::new(DefenseConfig::Full)],
        ..SweepGrid::empty()
    };
    for campaign_seed in [1u64, 7, 42, 1234, 0xDEAD] {
        let report = run_sweep(&grid, &SweepOptions { threads: 2, campaign_seed });
        let r = &report.results[0];
        assert_eq!(r.leaked, Some(false), "leaked under campaign seed {campaign_seed}");
    }
}

/// Table II row: "Handling Benign Noise Accesses ✓" — challenges C3/C4.
#[test]
fn defends_under_benign_noise() {
    for noise in ["+c3", "+c4", "+c3c4"] {
        for kind in ["fr", "er", "pp"] {
            assert!(
                !leaked(&format!("{kind}{noise}"), "full32"),
                "{kind} with noise {noise} not defended"
            );
        }
    }
}

/// The threat model sanity half: every attack actually *works* when
/// nothing defends — otherwise the defense claims above are vacuous.
#[test]
fn undefended_attacks_genuinely_leak() {
    for kind in ["fr", "er", "pp"] {
        for cross in ["", "x"] {
            let tag = format!("{kind}{cross}");
            assert!(leaked(&tag, "base"), "{tag} failed to leak undefended");
            let id = format!("atk:{tag}/base/none/paper/s0");
            let r = campaign().by_id(&id).unwrap();
            assert_eq!(r.anomalies, Some(1), "{tag}: exactly the secret must be anomalous");
        }
    }
}

/// Every scenario id in the campaign is unique — the work-list carries no
/// duplicate grid points.
#[test]
fn campaign_scenario_ids_are_unique() {
    let mut ids: Vec<&str> = campaign().results.iter().map(|r| r.id.as_str()).collect();
    let n = ids.len();
    assert_eq!(n, 24 * 3, "24 attack cases x 3 defenses");
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate scenario ids in the campaign");
}

/// "No Software Modification ✓": the defense is configured purely at the
/// hardware model; the victim and attacker programs are byte-identical
/// between the defended and undefended runs. (This is structural in the
/// runner — both runs build from the same spec fields — so we assert the
/// spec carries no program-altering defense state.)
#[test]
fn defense_requires_no_program_changes() {
    let a = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::None);
    let b = AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full);
    assert_eq!(a.kind, b.kind);
    assert_eq!(a.noise, b.noise);
    assert_eq!(a.layout, b.layout);
    assert_eq!(a.seed, b.seed);
}

/// Defense granularity is the cacheline: the ST's misleading prefetches
/// land exactly one probe-stride away — adjacent eviction *cachelines*,
/// not whole sets or pages.
#[test]
fn defense_granularity_is_cacheline() {
    let o = run_attack(&AttackSpec::new(AttackKind::FlushReload, DefenseConfig::St))
        .expect("attack run");
    assert_eq!(o.anomalies, vec![64, 65, 66]);
}
