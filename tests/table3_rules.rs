//! The paper's Table III, row by row, as an executable specification.
//!
//! Each test name cites the table row it checks: the conditions columns
//! (instruction, argument kinds, `fva` validity of the sources) and the
//! results columns (`fva_d`, `sc_d`).

use prefender::core::{CalculationBuffer, RegTrack};
use prefender::isa::{Instr, Operand, Reg};

const RD: Reg = Reg::R10;
const RS0: Reg = Reg::R1;
const RS1: Reg = Reg::R2;

fn buf_with(s0: Option<RegTrack>, s1: Option<RegTrack>) -> CalculationBuffer {
    let mut b = CalculationBuffer::new();
    if let Some(t) = s0 {
        b.set(RS0, t);
    }
    if let Some(t) = s1 {
        b.set(RS1, t);
    }
    b
}

const fn valid(fva: i64) -> RegTrack {
    RegTrack { fva: Some(fva), sc: Some(1) }
}

const fn na_with_scale(sc: i64) -> RegTrack {
    RegTrack { fva: None, sc: Some(sc) }
}

// ---- load rows ----

/// Row: `load rd a=imm0` ⇒ `fva_d = imm0, sc_d = 1`.
#[test]
fn load_immediate_row() {
    let mut b = CalculationBuffer::new();
    b.apply(&Instr::LoadImm { rd: RD, imm: 0x200 });
    assert_eq!(b.get(RD), RegTrack { fva: Some(0x200), sc: Some(1) });
}

/// Row: `load rd imm(rs0)` ⇒ `fva_d = NA, sc_d = 1` (reinitialize).
#[test]
fn load_memory_row() {
    let mut b = buf_with(Some(valid(7)), None);
    b.set(RD, valid(99));
    b.apply(&Instr::Load { rd: RD, base: RS0, offset: 0 });
    assert_eq!(b.get(RD), RegTrack { fva: None, sc: Some(1) });
}

// ---- add rows (also subtraction) ----

/// Row: `add rd rs0 imm0`, `fva_s0 = NA` ⇒ `fva_d = NA, sc_d = sc_s0`.
#[test]
fn add_imm_na_source_row() {
    let mut b = buf_with(Some(na_with_scale(0x200)), None);
    b.apply(&Instr::Add { rd: RD, a: RS0, b: Operand::Imm(0x40) });
    assert_eq!(b.get(RD), na_with_scale(0x200));
}

/// Row: `add rd rs0 imm0`, `fva_s0` valid ⇒ `fva_d = fva_s0 + imm0, sc_d = 1`.
#[test]
fn add_imm_valid_source_row() {
    let mut b = buf_with(Some(valid(0x100)), None);
    b.apply(&Instr::Add { rd: RD, a: RS0, b: Operand::Imm(0x40) });
    assert_eq!(b.get(RD), RegTrack { fva: Some(0x140), sc: Some(1) });
}

/// Row: `add rd rs0 rs1`, both valid ⇒ `fva_d = sum, sc_d = NA`.
#[test]
fn add_reg_valid_valid_row() {
    let mut b = buf_with(Some(valid(0x100)), Some(valid(0x30)));
    b.apply(&Instr::Add { rd: RD, a: RS0, b: Operand::Reg(RS1) });
    assert_eq!(b.get(RD), RegTrack { fva: Some(0x130), sc: None });
}

/// Row: `add rd rs0 rs1`, `fva_s0 = NA`, `fva_s1` valid ⇒ `sc_d = sc_s0`.
#[test]
fn add_reg_na_valid_row() {
    let mut b = buf_with(Some(na_with_scale(0x200)), Some(valid(0x1000)));
    b.apply(&Instr::Add { rd: RD, a: RS0, b: Operand::Reg(RS1) });
    assert_eq!(b.get(RD), na_with_scale(0x200));
}

/// Row: `add rd rs0 rs1`, `fva_s0` valid, `fva_s1 = NA` ⇒ `sc_d = sc_s1`.
#[test]
fn add_reg_valid_na_row() {
    let mut b = buf_with(Some(valid(0x1000)), Some(na_with_scale(0x180)));
    b.apply(&Instr::Add { rd: RD, a: RS0, b: Operand::Reg(RS1) });
    assert_eq!(b.get(RD), na_with_scale(0x180));
}

/// Row: `add rd rs0 rs1`, both NA ⇒ `sc_d = min(sc_s0, sc_s1)`.
#[test]
fn add_reg_na_na_row() {
    let mut b = buf_with(Some(na_with_scale(0x80)), Some(na_with_scale(0x20)));
    b.apply(&Instr::Add { rd: RD, a: RS0, b: Operand::Reg(RS1) });
    assert_eq!(b.get(RD), na_with_scale(0x20));
}

/// Footnote †: the addition rules hold for subtraction with `+` → `−`.
#[test]
fn sub_uses_addition_rules() {
    let mut b = buf_with(Some(valid(0x100)), None);
    b.apply(&Instr::Sub { rd: RD, a: RS0, b: Operand::Imm(0x40) });
    assert_eq!(b.get(RD), RegTrack { fva: Some(0xC0), sc: Some(1) });

    let mut b = buf_with(Some(na_with_scale(0x200)), Some(na_with_scale(0x300)));
    b.apply(&Instr::Sub { rd: RD, a: RS0, b: Operand::Reg(RS1) });
    assert_eq!(b.get(RD), na_with_scale(0x200));
}

// ---- mul rows (also shifts) ----

/// Row: `mul rd rs0 imm0`, `fva_s0 = NA` ⇒ `sc_d = sc_s0 × imm0`.
#[test]
fn mul_imm_na_source_row() {
    let mut b = buf_with(Some(na_with_scale(2)), None);
    b.apply(&Instr::Mul { rd: RD, a: RS0, b: Operand::Imm(0x100) });
    assert_eq!(b.get(RD), na_with_scale(0x200));
}

/// Row: `mul rd rs0 imm0`, `fva_s0` valid ⇒ `fva_d = fva_s0 × imm0, sc_d = 1`.
#[test]
fn mul_imm_valid_source_row() {
    let mut b = buf_with(Some(valid(6)), None);
    b.apply(&Instr::Mul { rd: RD, a: RS0, b: Operand::Imm(7) });
    assert_eq!(b.get(RD), RegTrack { fva: Some(42), sc: Some(1) });
}

/// Row: `mul rd rs0 rs1`, both valid ⇒ `fva_d = product, sc_d = NA`.
#[test]
fn mul_reg_valid_valid_row() {
    let mut b = buf_with(Some(valid(6)), Some(valid(7)));
    b.apply(&Instr::Mul { rd: RD, a: RS0, b: Operand::Reg(RS1) });
    assert_eq!(b.get(RD), RegTrack { fva: Some(42), sc: None });
}

/// Row: `mul rd rs0 rs1`, `fva_s0 = NA`, `fva_s1` valid ⇒
/// `sc_d = sc_s0 × fva_s1` (the paper's Figure 5, line 5).
#[test]
fn mul_reg_na_valid_row() {
    let mut b = buf_with(Some(na_with_scale(1)), Some(valid(0x200)));
    b.apply(&Instr::Mul { rd: RD, a: RS0, b: Operand::Reg(RS1) });
    assert_eq!(b.get(RD), na_with_scale(0x200));
}

/// Row: `mul rd rs0 rs1`, `fva_s0` valid, `fva_s1 = NA` ⇒
/// `sc_d = fva_s0 × sc_s1`.
#[test]
fn mul_reg_valid_na_row() {
    let mut b = buf_with(Some(valid(0x80)), Some(na_with_scale(4)));
    b.apply(&Instr::Mul { rd: RD, a: RS0, b: Operand::Reg(RS1) });
    assert_eq!(b.get(RD), na_with_scale(0x200));
}

/// Row: `mul rd rs0 rs1`, both NA ⇒ `sc_d = sc_s0 × sc_s1` (the paper's
/// `(128·i0·i1·i2 + …)` multi-variable example).
#[test]
fn mul_reg_na_na_row() {
    let mut b = buf_with(Some(na_with_scale(16)), Some(na_with_scale(32)));
    b.apply(&Instr::Mul { rd: RD, a: RS0, b: Operand::Reg(RS1) });
    assert_eq!(b.get(RD), na_with_scale(512));
}

/// Footnote ‡: multiplication rules hold for shifting (× → `<<`).
#[test]
fn shl_uses_multiplication_rules() {
    let mut b = buf_with(Some(na_with_scale(4)), None);
    b.apply(&Instr::Shl { rd: RD, a: RS0, b: Operand::Imm(7) });
    assert_eq!(b.get(RD), na_with_scale(4 << 7));

    let mut b = buf_with(Some(valid(3)), None);
    b.apply(&Instr::Shl { rd: RD, a: RS0, b: Operand::Imm(4) });
    assert_eq!(b.get(RD), RegTrack { fva: Some(48), sc: Some(1) });
}

// ---- otherwise row ----

/// Row: "Otherwise" ⇒ `fva_d = NA, sc_d = 1` (reinitialize).
#[test]
fn otherwise_row_reinitializes() {
    for op in [
        Instr::And { rd: RD, a: RS0, b: Operand::Imm(0xFF) },
        Instr::Or { rd: RD, a: RS0, b: Operand::Imm(1) },
        Instr::Xor { rd: RD, a: RS0, b: Operand::Reg(RS1) },
        Instr::Rdtsc { rd: RD },
    ] {
        let mut b = buf_with(Some(na_with_scale(0x200)), Some(na_with_scale(0x100)));
        b.set(RD, na_with_scale(0x400));
        b.apply(&op);
        assert_eq!(b.get(RD), RegTrack::INIT, "op {op} must reinitialize rd");
    }
}

/// Initialization: "When a program is started, the fixed and scale values
/// are initialized to NA and 1, respectively."
#[test]
fn initialization_row() {
    let b = CalculationBuffer::new();
    for r in Reg::all() {
        assert_eq!(b.get(r), RegTrack { fva: None, sc: Some(1) });
    }
}
