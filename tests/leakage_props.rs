//! Property-based tests for the leakage lab's information-theoretic
//! primitives: entropy, histograms and channel estimates.

use proptest::prelude::*;

use prefender::leakage::{Channel, OBS_SILENT};
use prefender::stats::{derive_seed, entropy_bits, Histogram, SplitMix64};
use prefender::sweep::{run_sweep, SweepGrid, SweepOptions};

/// Random trial records for a channel over `n_inputs` secrets.
fn arb_trials(n_inputs: usize, max_trials: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec((0..n_inputs, 0u64..6), 1..max_trials)
}

proptest! {
    /// Entropy is non-negative, at most log2 of the support size, and
    /// invariant under scaling of the weights.
    #[test]
    fn entropy_bounds_and_scale_invariance(
        counts in prop::collection::vec(1u64..500, 1..20),
        scale in 1u64..100,
    ) {
        let h = entropy_bits(counts.iter().map(|&c| c as f64));
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (counts.len() as f64).log2() + 1e-9, "H={h} over {} symbols", counts.len());
        let scaled = entropy_bits(counts.iter().map(|&c| (c * scale) as f64));
        prop_assert!((h - scaled).abs() < 1e-9, "scaling weights must not move H");
    }

    /// A histogram's entropy matches the free function over its counts,
    /// its total matches the recorded mass, and merging adds counts.
    #[test]
    fn histogram_totals_and_entropy(
        a in prop::collection::vec((0u64..10, 1u64..50), 0..12),
        b in prop::collection::vec((0u64..10, 1u64..50), 0..12),
    ) {
        let ha = Histogram::from_counts(a.iter().copied());
        let hb = Histogram::from_counts(b.iter().copied());
        let expect_total: u64 = a.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(ha.total(), expect_total);
        let direct = entropy_bits(ha.counts().map(|(_, c)| c as f64));
        prop_assert!((ha.entropy_bits() - direct).abs() < 1e-12);
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.total(), ha.total() + hb.total());
        for (s, c) in merged.counts() {
            prop_assert_eq!(c, ha.count(s) + hb.count(s));
        }
    }

    /// The data-processing bounds every estimate must satisfy:
    /// 0 ≤ I(S;O) ≤ min(H(S), H(O)), and capacity dominates the
    /// uniform-prior mutual information.
    #[test]
    fn mi_within_information_bounds(trials in arb_trials(4, 100)) {
        let c = Channel::from_trials(4, trials);
        let mi = c.mutual_information_bits();
        prop_assert!(mi >= 0.0, "MI must be non-negative, got {mi}");
        prop_assert!(mi <= c.input_entropy_bits() + 1e-9,
            "MI {mi} exceeds H(S) {}", c.input_entropy_bits());
        prop_assert!(mi <= c.output_entropy_bits() + 1e-9,
            "MI {mi} exceeds H(O) {}", c.output_entropy_bits());
        prop_assert!(c.capacity_bits() >= mi - 1e-4,
            "capacity {} below MI {mi}", c.capacity_bits());
    }

    /// ML accuracy is a probability and never below the best constant
    /// guess (the most-trialled secret's share); guessing entropy sits in
    /// `[1, n]`.
    #[test]
    fn classifier_metrics_in_range(trials in arb_trials(5, 80)) {
        let c = Channel::from_trials(5, trials);
        let acc = c.ml_accuracy();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&acc));
        let best_prior = (0..5)
            .map(|i| c.input_trials(i) as f64 / c.total_trials() as f64)
            .fold(0.0, f64::max);
        prop_assert!(acc >= best_prior - 1e-9, "acc {acc} below prior guess {best_prior}");
        let g = c.guessing_entropy();
        prop_assert!((1.0 - 1e-9..=5.0 + 1e-9).contains(&g), "guessing entropy {g}");
    }

    /// Degenerate channels: a single secret, or every secret mapping to
    /// one symbol, carry zero information regardless of the trial layout.
    #[test]
    fn degenerate_channels_leak_nothing(trials in 1u64..40, n in 1usize..6) {
        let one_input = Channel::from_trials(1, (0..trials).map(|t| (0usize, t % 3)));
        prop_assert!(one_input.mutual_information_bits() < 1e-12);
        prop_assert!(one_input.capacity_bits() < 1e-9);
        let constant =
            Channel::from_trials(n, (0..n).flat_map(|i| (0..trials).map(move |_| (i, OBS_SILENT))));
        prop_assert!(constant.mutual_information_bits() < 1e-12);
        prop_assert!((constant.ml_accuracy() - 1.0 / n as f64).abs() < 1e-9);
    }

    /// A noiseless channel leaks exactly the secret entropy, however many
    /// trials each secret gets.
    #[test]
    fn identity_channel_leaks_input_entropy(n in 2usize..8, trials in 1u32..6) {
        let c = Channel::from_trials(
            n,
            (0..n).flat_map(|i| (0..trials).map(move |_| (i, i as u64))),
        );
        prop_assert!((c.mutual_information_bits() - (n as f64).log2()).abs() < 1e-9);
        prop_assert!((c.ml_accuracy() - 1.0).abs() < 1e-12);
        prop_assert!((c.guessing_entropy() - 1.0).abs() < 1e-12);
    }

    /// The Miller–Madow correction only ever shrinks the plug-in MI, and
    /// both bootstrap confidence intervals bracket their point estimate.
    #[test]
    fn corrected_mi_and_bootstrap_cis_are_consistent(trials in arb_trials(4, 60), seed in 0u64..1000) {
        let c = Channel::from_trials(4, trials);
        let mi = c.mutual_information_bits();
        let corrected = c.mi_bits_corrected();
        prop_assert!(corrected >= 0.0);
        prop_assert!(corrected <= mi + 1e-12, "corrected {corrected} above plug-in {mi}");
        let (lo, hi) = c.bootstrap_ci(40, 0.1, seed, Channel::mutual_information_bits);
        prop_assert!(lo <= mi && mi <= hi, "MI CI [{lo}, {hi}] misses point {mi}");
        let acc = c.ml_accuracy();
        let (alo, ahi) = c.bootstrap_ci(40, 0.1, seed, Channel::ml_accuracy);
        prop_assert!(alo <= acc && acc <= ahi, "acc CI [{alo}, {ahi}] misses point {acc}");
    }

    /// The sorted-column guessing-entropy ranking matches the original
    /// O(n²·m) rescan bit for bit on arbitrary channels.
    #[test]
    fn guessing_entropy_matches_naive_rescan(trials in arb_trials(6, 120)) {
        let c = Channel::from_trials(6, trials);
        let total = c.total_trials();
        let mut rank_sum = 0.0;
        for &sym in c.symbols() {
            let col: Vec<u64> = (0..c.n_inputs()).map(|i| c.count(i, sym)).collect();
            for (i, &cnt) in col.iter().enumerate() {
                if cnt == 0 {
                    continue;
                }
                let better = col.iter().filter(|&&x| x > cnt).count() as f64;
                let tied =
                    col.iter().enumerate().filter(|&(k, &x)| k != i && x == cnt).count() as f64;
                rank_sum += cnt as f64 * (1.0 + better + tied / 2.0);
            }
        }
        let naive = rank_sum / total as f64;
        prop_assert_eq!(c.guessing_entropy(), naive, "refactor must match the rescan exactly");
    }

    /// Capacity stays finite and inside `[MI, log2 n]` on arbitrary
    /// channels — including ones whose Blahut–Arimoto prior collapses.
    #[test]
    fn capacity_is_finite_and_bounded(trials in arb_trials(5, 100)) {
        let c = Channel::from_trials(5, trials);
        let cap = c.capacity_bits();
        prop_assert!(cap.is_finite());
        prop_assert!(cap >= c.mutual_information_bits() - 1e-3);
        prop_assert!(cap <= (c.n_inputs() as f64).log2() + 1e-9);
    }
}

/// On a channel whose observations are independent of the secret label,
/// the permutation test must accept the zero-leakage null (`p ≥ alpha`)
/// in at least the `1 − alpha` expected fraction of instances — the
/// p-value is super-uniform, so at `alpha = 0.05` at most ~5% of
/// label-independent channels may still reject. Fully deterministic:
/// both the channels and the permutation draws are SplitMix-seeded.
#[test]
fn permutation_p_values_are_calibrated_on_independent_channels() {
    const INSTANCES: u64 = 200;
    const ALPHA: f64 = 0.05;
    let mut accepted = 0u32;
    for k in 0..INSTANCES {
        let mut rng = SplitMix64::new(derive_seed(0xCA11_B4A7, &[k]));
        // 4 secrets × 8 trials; the symbol distribution ignores the label.
        let c = Channel::from_trials(4, (0..32).map(|t| (t % 4, rng.below(3))).collect::<Vec<_>>());
        let null = c.permutation_test(99, derive_seed(0x9E57, &[k]));
        if null.p_value >= ALPHA {
            accepted += 1;
        }
    }
    let fraction = f64::from(accepted) / INSTANCES as f64;
    assert!(
        fraction >= 1.0 - ALPHA - 0.05,
        "only {fraction:.2} of label-independent channels accepted the null (expect ≥ ~0.95)"
    );
}

/// Satellite acceptance: `leakage.json` / `leakage.csv` with
/// `--permutations 50` (and bootstrap CIs) are byte-identical at 1 vs 8
/// threads — the resampling layer inherits the engine's determinism
/// contract.
#[test]
fn resampled_leakage_artifacts_are_thread_count_invariant() {
    let mut grid = SweepGrid::leakage_quick();
    grid.leakage_secrets = 4;
    grid.leakage_trials = 2;
    grid.leakage_permutations = 50;
    grid.leakage_bootstrap = 25;
    let one = run_sweep(&grid, &SweepOptions { threads: 1, campaign_seed: 0xC0FFEE });
    let eight = run_sweep(&grid, &SweepOptions { threads: 8, campaign_seed: 0xC0FFEE });
    assert_eq!(one.leakage_json(), eight.leakage_json(), "leakage.json must not depend on threads");
    assert_eq!(one.leakage_csv(), eight.leakage_csv(), "leakage.csv must not depend on threads");
    assert!(one.leakage_json().contains("\"mi_p_value\": "));
    assert!(one.leakage_json().contains("\"schema_version\": 3"));
}
