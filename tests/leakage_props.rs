//! Property-based tests for the leakage lab's information-theoretic
//! primitives: entropy, histograms and channel estimates.

use proptest::prelude::*;

use prefender::leakage::{Channel, OBS_SILENT};
use prefender::stats::{entropy_bits, Histogram};

/// Random trial records for a channel over `n_inputs` secrets.
fn arb_trials(n_inputs: usize, max_trials: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec((0..n_inputs, 0u64..6), 1..max_trials)
}

proptest! {
    /// Entropy is non-negative, at most log2 of the support size, and
    /// invariant under scaling of the weights.
    #[test]
    fn entropy_bounds_and_scale_invariance(
        counts in prop::collection::vec(1u64..500, 1..20),
        scale in 1u64..100,
    ) {
        let h = entropy_bits(counts.iter().map(|&c| c as f64));
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (counts.len() as f64).log2() + 1e-9, "H={h} over {} symbols", counts.len());
        let scaled = entropy_bits(counts.iter().map(|&c| (c * scale) as f64));
        prop_assert!((h - scaled).abs() < 1e-9, "scaling weights must not move H");
    }

    /// A histogram's entropy matches the free function over its counts,
    /// its total matches the recorded mass, and merging adds counts.
    #[test]
    fn histogram_totals_and_entropy(
        a in prop::collection::vec((0u64..10, 1u64..50), 0..12),
        b in prop::collection::vec((0u64..10, 1u64..50), 0..12),
    ) {
        let ha = Histogram::from_counts(a.iter().copied());
        let hb = Histogram::from_counts(b.iter().copied());
        let expect_total: u64 = a.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(ha.total(), expect_total);
        let direct = entropy_bits(ha.counts().map(|(_, c)| c as f64));
        prop_assert!((ha.entropy_bits() - direct).abs() < 1e-12);
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.total(), ha.total() + hb.total());
        for (s, c) in merged.counts() {
            prop_assert_eq!(c, ha.count(s) + hb.count(s));
        }
    }

    /// The data-processing bounds every estimate must satisfy:
    /// 0 ≤ I(S;O) ≤ min(H(S), H(O)), and capacity dominates the
    /// uniform-prior mutual information.
    #[test]
    fn mi_within_information_bounds(trials in arb_trials(4, 100)) {
        let c = Channel::from_trials(4, trials);
        let mi = c.mutual_information_bits();
        prop_assert!(mi >= 0.0, "MI must be non-negative, got {mi}");
        prop_assert!(mi <= c.input_entropy_bits() + 1e-9,
            "MI {mi} exceeds H(S) {}", c.input_entropy_bits());
        prop_assert!(mi <= c.output_entropy_bits() + 1e-9,
            "MI {mi} exceeds H(O) {}", c.output_entropy_bits());
        prop_assert!(c.capacity_bits() >= mi - 1e-4,
            "capacity {} below MI {mi}", c.capacity_bits());
    }

    /// ML accuracy is a probability and never below the best constant
    /// guess (the most-trialled secret's share); guessing entropy sits in
    /// `[1, n]`.
    #[test]
    fn classifier_metrics_in_range(trials in arb_trials(5, 80)) {
        let c = Channel::from_trials(5, trials);
        let acc = c.ml_accuracy();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&acc));
        let best_prior = (0..5)
            .map(|i| c.input_trials(i) as f64 / c.total_trials() as f64)
            .fold(0.0, f64::max);
        prop_assert!(acc >= best_prior - 1e-9, "acc {acc} below prior guess {best_prior}");
        let g = c.guessing_entropy();
        prop_assert!((1.0 - 1e-9..=5.0 + 1e-9).contains(&g), "guessing entropy {g}");
    }

    /// Degenerate channels: a single secret, or every secret mapping to
    /// one symbol, carry zero information regardless of the trial layout.
    #[test]
    fn degenerate_channels_leak_nothing(trials in 1u64..40, n in 1usize..6) {
        let one_input = Channel::from_trials(1, (0..trials).map(|t| (0usize, t % 3)));
        prop_assert!(one_input.mutual_information_bits() < 1e-12);
        prop_assert!(one_input.capacity_bits() < 1e-9);
        let constant =
            Channel::from_trials(n, (0..n).flat_map(|i| (0..trials).map(move |_| (i, OBS_SILENT))));
        prop_assert!(constant.mutual_information_bits() < 1e-12);
        prop_assert!((constant.ml_accuracy() - 1.0 / n as f64).abs() < 1e-9);
    }

    /// A noiseless channel leaks exactly the secret entropy, however many
    /// trials each secret gets.
    #[test]
    fn identity_channel_leaks_input_entropy(n in 2usize..8, trials in 1u32..6) {
        let c = Channel::from_trials(
            n,
            (0..n).flat_map(|i| (0..trials).map(move |_| (i, i as u64))),
        );
        prop_assert!((c.mutual_information_bits() - (n as f64).log2()).abs() < 1e-9);
        prop_assert!((c.ml_accuracy() - 1.0).abs() < 1e-12);
        prop_assert!((c.guessing_entropy() - 1.0).abs() < 1e-12);
    }
}
