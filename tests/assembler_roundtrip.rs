//! Assembler round-trip: disassembly re-parses to the identical program.
//!
//! `Program`'s `Display` impl is documented to emit text that
//! [`Program::parse`] accepts (generating `L<n>` labels for branch
//! targets). This pins that contract over every real program in the repo:
//! each standalone attack phase, each composed single-core attack (all
//! twelve Figure 8 panels), and all 21 synthetic SPEC workloads.
//!
//! The round-trip compares instruction sequences: `Display` deliberately
//! drops the name and base PC, which are metadata, not code.

use prefender::attacks::{
    composed_attack_program, evict_program, flush_program, prime_probe_probe_program,
    prime_probe_program, reload_probe_program, victim_program, AttackKind, AttackLayout,
    AttackSpec, DefenseConfig, NoiseSpec,
};
use prefender::{Program, Workload};

fn assert_round_trips(label: &str, p: &Program) {
    let text = p.to_string();
    let reparsed = Program::parse(&text)
        .unwrap_or_else(|e| panic!("{label}: disassembly does not re-parse: {e}\n{text}"));
    assert_eq!(
        reparsed.instrs(),
        p.instrs(),
        "{label}: round-trip changed the instruction sequence"
    );
}

#[test]
fn standalone_attack_programs_round_trip() {
    let l = AttackLayout::paper();
    assert_round_trips("flush", &flush_program(&l));
    assert_round_trips("evict", &evict_program(&l));
    assert_round_trips("victim", &victim_program(&l));
    assert_round_trips("reload", &reload_probe_program(&l, l.n_indices, false).program);
    assert_round_trips("prime", &prime_probe_program(&l, false));
    assert_round_trips("probe", &prime_probe_probe_program(&l, false, false, false).program);
}

#[test]
fn composed_attack_programs_round_trip() {
    for kind in [AttackKind::FlushReload, AttackKind::EvictReload, AttackKind::PrimeProbe] {
        for noise in [NoiseSpec::NONE, NoiseSpec::C3, NoiseSpec::C4, NoiseSpec::C3C4] {
            let spec = AttackSpec::new(kind, DefenseConfig::None).with_noise(noise);
            let (program, _) = composed_attack_program(&spec);
            assert_round_trips(&format!("{kind:?}/{noise:?}"), &program);
        }
    }
}

#[test]
fn workload_programs_round_trip() {
    let all = prefender::workloads::all();
    assert_eq!(all.len(), 21, "workload catalog changed size; extend the test");
    for w in &all {
        assert_round_trips(w.name(), &w.program());
    }
    // Silence the unused-import warning for Workload while keeping the
    // type in the facade surface this test exercises.
    let _: &Workload = &all[0];
}
