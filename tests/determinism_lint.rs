//! Source lint: no unordered-collection iteration in artifact crates.
//!
//! Every artifact this repo emits (sweep JSON/CSV, leakage maps,
//! forensics.json, AUDIT.json, telemetry) is contractually byte-identical
//! across runs and thread counts. The classic way that contract rots is a
//! `HashMap`/`HashSet` whose iteration order silently reaches an
//! artifact. This lint scans the sources of the artifact-producing crates
//! and fails on any line mentioning `HashMap` or `HashSet` that does not
//! carry an explicit `// lint: ordered` waiver.
//!
//! A waiver asserts the collection is *never iterated* (pure lookup
//! tables like `Mix64Map`) or iterated only for membership-style
//! assertions in tests. Use `BTreeMap`/`BTreeSet` anywhere order can
//! reach output.

use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose output feeds a deterministic artifact.
const ARTIFACT_CRATES: &[&str] =
    &["crates/sim", "crates/sweep", "crates/leakage", "crates/obs", "crates/taint", "crates/bench"];

const WAIVER: &str = "// lint: ordered";

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_sources(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

#[test]
fn artifact_crates_do_not_iterate_unordered_collections() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for krate in ARTIFACT_CRATES {
        let src = root.join(krate).join("src");
        assert!(src.is_dir(), "missing {krate}/src — crate moved? update the lint");
        let mut files = Vec::new();
        rust_sources(&src, &mut files);
        assert!(!files.is_empty(), "no sources under {krate}/src");
        for file in files {
            let text = fs::read_to_string(&file).expect("readable source");
            scanned += 1;
            for (i, line) in text.lines().enumerate() {
                let has_hash = line.contains("HashMap") || line.contains("HashSet");
                if has_hash && !line.contains(WAIVER) {
                    violations.push(format!(
                        "{}:{}: {}",
                        file.strip_prefix(root).unwrap_or(&file).display(),
                        i + 1,
                        line.trim()
                    ));
                }
            }
        }
    }
    assert!(scanned > 20, "lint scanned suspiciously few files ({scanned})");
    assert!(
        violations.is_empty(),
        "unordered collections in artifact crates without `{WAIVER}` waiver \
         (use BTreeMap/BTreeSet, or add the waiver if never iterated):\n{}",
        violations.join("\n")
    );
}

#[test]
fn lint_covers_the_crash_safety_modules() {
    // The crash-safety layer (shard/checkpoint codecs in sweep, the
    // failpoint registry and atomic writer in obs) serializes artifacts
    // and replays them on resume — exactly where unordered iteration
    // would silently break resume-equality. Make sure a future module
    // move keeps them inside the lint's scan set.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for krate in ARTIFACT_CRATES {
        rust_sources(&root.join(krate).join("src"), &mut files);
    }
    for required in [
        "crates/sweep/src/shard.rs",
        "crates/sweep/src/checkpoint.rs",
        "crates/sweep/src/lease.rs",
        "crates/sweep/src/serve.rs",
        "crates/obs/src/failpoint.rs",
        "crates/obs/src/fsio.rs",
    ] {
        assert!(
            files.iter().any(|f| f.ends_with(required)),
            "{required} is no longer scanned by the determinism lint — \
             moved crates must stay in ARTIFACT_CRATES"
        );
    }
}

#[test]
fn waivers_are_not_stale() {
    // Every waiver must still sit on a line that needs it; a waiver on a
    // HashMap-free line is leftover noise from a refactor.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut stale = Vec::new();
    for krate in ARTIFACT_CRATES {
        let mut files = Vec::new();
        rust_sources(&root.join(krate).join("src"), &mut files);
        for file in files {
            let text = fs::read_to_string(&file).expect("readable source");
            for (i, line) in text.lines().enumerate() {
                if line.contains(WAIVER)
                    && !line.contains("HashMap")
                    && !line.contains("HashSet")
                    && !line.contains("WAIVER")
                {
                    stale.push(format!(
                        "{}:{}: {}",
                        file.strip_prefix(root).unwrap_or(&file).display(),
                        i + 1,
                        line.trim()
                    ));
                }
            }
        }
    }
    assert!(stale.is_empty(), "stale `{WAIVER}` waivers:\n{}", stale.join("\n"));
}
