//! End-to-end flows through the facade: the README's claims, executable.

use prefender::{
    run_attack, spec2006, spec2017, AttackKind, AttackSpec, DefenseConfig, HierarchyConfig,
    Machine, Prefender, Prefetcher, Program, Reg, StridePrefetcher, TaggedPrefetcher, Workload,
};

fn cycles(w: &Workload, prefetcher: Option<Box<dyn Prefetcher>>) -> u64 {
    let mut m = Machine::new(HierarchyConfig::paper_baseline(1).unwrap());
    if let Some(p) = prefetcher {
        m.set_prefetcher(0, p);
    }
    w.install(&mut m);
    let s = m.run();
    assert!(!s.truncated);
    s.cycles
}

#[test]
fn headline_claim_security_and_performance() {
    // Security: the attack is defeated...
    let o = run_attack(&AttackSpec::new(AttackKind::FlushReload, DefenseConfig::Full)).unwrap();
    assert!(!o.leaked);
    // ...and performance does not regress on average across the suite.
    let mut base_total = 0u64;
    let mut defended_total = 0u64;
    for w in spec2006() {
        base_total += cycles(&w, None);
        defended_total += cycles(&w, Some(Box::new(Prefender::builder(64, 4096).build())));
    }
    assert!(
        defended_total <= base_total,
        "PREFENDER regressed overall: {defended_total} vs {base_total}"
    );
}

#[test]
fn scale_tracker_accelerates_gather_workloads() {
    let parest = spec2017().into_iter().find(|w| w.name() == "510.parest_r").unwrap();
    let base = cycles(&parest, None);
    let st_only = cycles(
        &parest,
        Some(Box::new(
            Prefender::builder(64, 4096).access_tracker(false).record_protector(false).build(),
        )),
    );
    assert!(
        (st_only as f64) < base as f64 * 0.97,
        "ST alone should speed up parest by >3%: {st_only} vs {base}"
    );
}

#[test]
fn compute_bound_workloads_are_untouched() {
    for name in ["999.specrand", "548.exchange2_r"] {
        let w = spec2006().into_iter().chain(spec2017()).find(|w| w.name() == name).unwrap();
        let base = cycles(&w, None);
        let defended = cycles(&w, Some(Box::new(Prefender::builder(64, 4096).build())));
        assert_eq!(base, defended, "{name} must be cycle-identical");
    }
}

#[test]
fn prefender_stacks_on_conventional_prefetchers() {
    // Compatibility claim: PREFENDER over Tagged/Stride never breaks a
    // workload (and the combination still defends).
    let w = spec2006().into_iter().find(|w| w.name() == "401.bzip2").unwrap();
    let base = cycles(&w, None);
    for basic in [
        Box::new(TaggedPrefetcher::new(64, 1)) as Box<dyn Prefetcher>,
        Box::new(StridePrefetcher::default_config()),
    ] {
        let stacked = Prefender::builder(64, 4096).basic(basic).build();
        let c = cycles(&w, Some(Box::new(stacked)));
        assert!(c < base, "stacked configuration must still help bzip2");
    }
}

#[test]
fn assembled_victim_triggers_scale_tracker_end_to_end() {
    let mut m = Machine::new(HierarchyConfig::paper_baseline(1).unwrap());
    m.set_prefetcher(0, Box::new(Prefender::builder(64, 4096).build()));
    m.write_data(0x2000, 12);
    m.load_program(
        0,
        Program::parse(
            "
            li r0, 0x2000
            ld r1, 0(r0)
            li r2, 0x100000
            li r3, 0x200
            mul r4, r1, r3
            add r5, r2, r4
            ld r6, 0(r5)
            halt
            ",
        )
        .unwrap(),
    );
    m.run();
    assert_eq!(m.core(0).regs().read(Reg::R1), 12);
    // The Figure 5 example: at least two more eviction cachelines present.
    let line = |i: i64| prefender::Addr::new((0x100000 + 12 * 0x200 + i * 0x200) as u64);
    assert!(m.mem().probe_l1d(0, line(0)), "the demand line");
    assert!(m.mem().probe_l1d(0, line(1)), "ST's +scale neighbour");
    assert!(m.mem().probe_l1d(0, line(-1)), "ST's -scale neighbour");
}

#[test]
fn full_machine_runs_are_deterministic() {
    let run = || {
        let w = spec2006().into_iter().find(|w| w.name() == "429.mcf").unwrap();
        cycles(&w, Some(Box::new(Prefender::builder(64, 4096).build())))
    };
    assert_eq!(run(), run());
}
